package jobs

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Config parameterizes a Manager. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Workers is the number of jobs executed concurrently. Discovery
	// parallelizes internally across GOMAXPROCS ranking workers, so a small
	// pool saturates the machine. Default 2.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; Submit fails with
	// ErrQueueFull beyond it. Default 256.
	QueueDepth int
	// MaxCompleted bounds how many finished jobs (and their results) are
	// retained; the oldest-finished are evicted beyond it. Default 64.
	MaxCompleted int
	// TTL evicts finished jobs older than this on the retention sweep
	// (run on every Submit and List). Default 1 hour.
	TTL time.Duration
	// Dir, when set, journals every job to <Dir>/<id>.wal so results
	// survive a process restart; empty keeps jobs in memory only.
	Dir string
	// Now substitutes the clock, for retention tests. Default time.Now.
	Now func() time.Time
	// Discover substitutes core.DiscoverFacts, for tests that need to
	// control execution timing or count concurrency. Nil means the real
	// algorithm.
	Discover discoverFunc
}

// ErrQueueFull reports that Submit found the pending-job queue at capacity.
var ErrQueueFull = errors.New("jobs: job queue is full")

// errManagerClosed reports a Submit after Close.
var errManagerClosed = errors.New("jobs: manager is closed")

// Status is a point-in-time snapshot of one job, safe to serialize.
type Status struct {
	ID       string `json:"id"`
	Label    string `json:"label,omitempty"`
	State    State  `json:"state"`
	Error    string `json:"error,omitempty"`
	Resumed  int    `json:"resumed_relations"`
	Done     int    `json:"done_relations"`
	Total    int    `json:"total_relations"`
	Facts    int    `json:"facts"`
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Job is one submitted discovery run owned by a Manager.
type Job struct {
	id    string
	label string
	spec  Spec

	mu       sync.Mutex
	state    State
	err      error
	resumed  int
	done     int
	total    int
	facts    int
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc // non-nil while running
	wantStop bool               // Cancel was requested
	result   *core.Result
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Label: j.label, State: j.state,
		Resumed: j.resumed, Done: j.done, Total: j.total, Facts: j.facts,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result returns the discovery result once the job is done, or false while
// it is not.
func (j *Job) Result() (*core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// Counters are the manager's monotonic lifecycle counters, for /metrics.
type Counters struct {
	Submitted uint64
	Completed uint64
	Failed    uint64
	Cancelled uint64
	Evicted   uint64
}

// Manager owns a bounded worker pool executing discovery jobs, a registry
// of their statuses and results, and a retention policy bounding how long
// finished jobs (and their result memory) stick around.
type Manager struct {
	cfg      Config
	discover discoverFunc
	baseCtx  context.Context
	baseStop context.CancelFunc
	queue    chan *Job
	wg       sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*Job
	order    []*Job // insertion order, for List and eviction
	counters Counters
}

// NewManager starts cfg.Workers workers and returns the manager. Close must
// be called to stop them.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxCompleted <= 0 {
		cfg.MaxCompleted = 64
	}
	if cfg.TTL <= 0 {
		cfg.TTL = time.Hour
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		discover: core.DiscoverFacts,
		baseCtx:  ctx,
		baseStop: stop,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
	}
	if cfg.Discover != nil {
		m.discover = cfg.Discover
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit registers a job and queues it for execution. When the manager has
// a journal directory, the job checkpoints to <dir>/<id>.wal (resuming any
// journal a previous incarnation left there).
func (m *Manager) Submit(spec Spec) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errManagerClosed
	}
	m.seq++
	id := fmt.Sprintf("job-%06d", m.seq)
	j := &Job{
		id:      id,
		label:   spec.Label,
		spec:    spec,
		state:   StateQueued,
		created: m.cfg.Now(),
	}
	if m.cfg.Dir != "" && j.spec.Journal == "" {
		j.spec.Journal = filepath.Join(m.cfg.Dir, id+".wal")
		j.spec.Resume = true
	}
	// The enqueue happens under m.mu: Close also closes the queue under
	// m.mu, so a send can never race a close. The send never blocks — the
	// channel is buffered to QueueDepth and full means ErrQueueFull.
	select {
	case m.queue <- j:
	default:
		m.seq--
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, j)
	m.counters.Submitted++
	m.sweepLocked()
	m.mu.Unlock()
	return j, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a queued or running job. It reports
// whether the request took effect (false once the job already finished).
func (m *Manager) Cancel(id string) (bool, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("jobs: unknown job %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state.Finished():
		return false, nil
	case j.state == StateRunning:
		j.wantStop = true
		j.cancel()
		return true, nil
	default: // queued: the worker observes wantStop and skips execution
		j.wantStop = true
		return true, nil
	}
}

// List returns a status snapshot of every retained job in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	m.sweepLocked()
	jobs := append([]*Job(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Snapshot returns the per-state job counts and the lifecycle counters, for
// the /metrics endpoint.
func (m *Manager) Snapshot() (map[State]int, Counters) {
	m.mu.Lock()
	jobs := append([]*Job(nil), m.order...)
	counters := m.counters
	m.mu.Unlock()
	counts := map[State]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}
	for _, j := range jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts, counters
}

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the workers to drain. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.baseStop()
	m.wg.Wait()
}

// sweepLocked enforces retention: finished jobs older than TTL are dropped,
// then the oldest-finished beyond MaxCompleted. Running and queued jobs are
// never evicted. Caller holds m.mu; job mutexes are acquired under it (the
// only permitted order — nothing acquires m.mu while holding a job mutex).
func (m *Manager) sweepLocked() {
	now := m.cfg.Now()
	var finished, expired []*Job
	for _, j := range m.order {
		j.mu.Lock()
		if j.state.Finished() {
			if now.Sub(j.finished) > m.cfg.TTL {
				expired = append(expired, j)
			} else {
				finished = append(finished, j)
			}
		}
		j.mu.Unlock()
	}
	for _, j := range expired {
		m.evictLocked(j)
	}
	if over := len(finished) - m.cfg.MaxCompleted; over > 0 {
		sort.Slice(finished, func(i, j int) bool {
			return finished[i].finished.Before(finished[j].finished)
		})
		for _, j := range finished[:over] {
			m.evictLocked(j)
		}
	}
}

func (m *Manager) evictLocked(j *Job) {
	delete(m.jobs, j.id)
	for i, o := range m.order {
		if o == j {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.counters.Evicted++
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.execute(j)
	}
}

func (m *Manager) execute(j *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.wantStop {
		j.state = StateCancelled
		j.finished = m.cfg.Now()
		j.mu.Unlock()
		m.bumpCounter(StateCancelled)
		if j.spec.OnFinish != nil {
			j.spec.OnFinish(StateCancelled)
		}
		return
	}
	j.state = StateRunning
	j.started = m.cfg.Now()
	j.cancel = cancel
	j.mu.Unlock()

	spec := j.spec
	spec.OnProgress = func(p Progress) {
		j.mu.Lock()
		j.done = p.Done
		j.total = p.Total
		j.facts = p.FactsSum
		j.mu.Unlock()
	}
	res, info, err := run(ctx, spec, m.discover)

	j.mu.Lock()
	j.cancel = nil
	j.finished = m.cfg.Now()
	j.resumed = info.Resumed
	j.total = info.TotalRelations
	var final State
	switch {
	case err == nil:
		final = StateDone
		j.result = res
		j.done = info.TotalRelations
		j.facts = len(res.Facts)
	case j.wantStop || errors.Is(err, context.Canceled):
		final = StateCancelled
		j.err = context.Canceled
	default:
		final = StateFailed
		j.err = err
	}
	j.state = final
	j.mu.Unlock()
	m.bumpCounter(final)
	if j.spec.OnFinish != nil {
		j.spec.OnFinish(final)
	}
}

func (m *Manager) bumpCounter(s State) {
	m.mu.Lock()
	switch s {
	case StateDone:
		m.counters.Completed++
	case StateFailed:
		m.counters.Failed++
	case StateCancelled:
		m.counters.Cancelled++
	}
	m.mu.Unlock()
}
