package jobs

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
)

// stubDiscover returns a discover function that reports its concurrency
// through the counters and blocks until release is closed (nil release
// returns immediately).
func stubDiscover(inFlight, peak *int64, release chan struct{}) discoverFunc {
	return func(ctx context.Context, _ kge.Model, _ *kg.Graph, _ core.Strategy, opts core.Options) (*core.Result, error) {
		n := atomic.AddInt64(inFlight, 1)
		defer atomic.AddInt64(inFlight, -1)
		for {
			old := atomic.LoadInt64(peak)
			if n <= old || atomic.CompareAndSwapInt64(peak, old, n) {
				break
			}
		}
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res := &core.Result{}
		for _, r := range opts.Relations {
			fact := core.Fact{Triple: kg.Triple{S: 0, R: r, O: 1}, Rank: 1}
			res.Facts = append(res.Facts, fact)
			if opts.OnRelationDone != nil {
				opts.OnRelationDone(core.RelationDone{
					Relation: r, Total: len(opts.Relations),
					Facts: []core.Fact{fact},
					Stats: core.RelationStats{Relation: r, Generated: 2, ScoreSweeps: 1, Facts: 1},
				})
			}
		}
		return res, nil
	}
}

// managerSpec is a minimal spec for stubbed discover functions; the stub
// never touches the model or graph beyond the relation list.
func managerSpec(t *testing.T) Spec {
	ds, m, fp := testModel(t)
	return Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(),
		Options:     core.Options{TopN: 40, MaxCandidates: 30, Seed: 7, Relations: ds.Train.RelationIDs()},
		Fingerprint: fp,
	}
}

func waitState(t *testing.T, j *Job, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := j.Status()
		if st.State == want {
			return st
		}
		if st.State.Finished() && st.State != want {
			t.Fatalf("job %s finished as %s, want %s (err: %s)", st.ID, st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s (now %s)", j.ID(), want, j.Status().State)
	return Status{}
}

func TestManagerRunsJobToCompletion(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	j, err := m.Submit(managerSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, StateDone)
	if st.Done != st.Total || st.Total == 0 {
		t.Fatalf("done %d of %d relations", st.Done, st.Total)
	}
	res, ok := j.Result()
	if !ok || res == nil {
		t.Fatal("no result for done job")
	}
	if st.Facts != len(res.Facts) {
		t.Fatalf("status facts %d, result has %d", st.Facts, len(res.Facts))
	}
}

// TestManagerWorkerPoolCap hammers the pool with more jobs than workers and
// requires peak concurrency to stay at the cap.
func TestManagerWorkerPoolCap(t *testing.T) {
	var inFlight, peak int64
	release := make(chan struct{})
	m := NewManager(Config{Workers: 3, Discover: stubDiscover(&inFlight, &peak, release)})
	defer m.Close()

	spec := managerSpec(t)
	jobs := make([]*Job, 12)
	for i := range jobs {
		j, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	// Wait until the pool is saturated, then let everything finish.
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt64(&inFlight) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for _, j := range jobs {
		waitState(t, j, StateDone)
	}
	if got := atomic.LoadInt64(&peak); got != 3 {
		t.Fatalf("peak concurrency %d, want exactly the worker cap 3", got)
	}
}

// TestManagerConcurrentLifecycle drives submit/status/cancel/list from many
// goroutines at once; the race detector is the real assertion.
func TestManagerConcurrentLifecycle(t *testing.T) {
	var inFlight, peak int64
	m := NewManager(Config{Workers: 4, Discover: stubDiscover(&inFlight, &peak, nil)})
	defer m.Close()
	spec := managerSpec(t)

	var wg sync.WaitGroup
	ids := make(chan string, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				j, err := m.Submit(spec)
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids <- j.ID()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				select {
				case id := <-ids:
					m.Cancel(id)
					if j, ok := m.Get(id); ok {
						_ = j.Status()
					}
				default:
				}
				m.List()
				m.Snapshot()
			}
		}()
	}
	wg.Wait()

	// Every job must reach a terminal state.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		counts, _ := m.Snapshot()
		if counts[StateQueued] == 0 && counts[StateRunning] == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("jobs stuck in non-terminal states")
}

// TestManagerCancelMidRelationLeavesResumableJournal cancels a running
// journaled job between relations and then resumes the journal it left.
func TestManagerCancelMidRelationLeavesResumableJournal(t *testing.T) {
	ds, mdl, fp := testModel(t)
	dir := t.TempDir()
	proceed := make(chan struct{})
	var once sync.Once
	m := NewManager(Config{Workers: 1, Dir: dir})
	defer m.Close()

	spec := managerSpec(t)
	spec.OnProgress = nil
	// Real discovery, but stall after the second relation journals so the
	// cancel lands mid-run deterministically.
	m.discover = func(ctx context.Context, mo kge.Model, g *kg.Graph, s core.Strategy, opts core.Options) (*core.Result, error) {
		inner := opts.OnRelationDone
		opts.OnRelationDone = func(d core.RelationDone) {
			inner(d)
			if d.Index == 1 {
				once.Do(func() { close(proceed) })
				<-ctx.Done() // hold the sweep here until cancelled
			}
		}
		return core.DiscoverFacts(ctx, mo, g, s, opts)
	}

	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-proceed
	if ok, err := m.Cancel(j.ID()); err != nil || !ok {
		t.Fatalf("Cancel: ok=%v err=%v", ok, err)
	}
	st := waitState(t, j, StateCancelled)
	if st.Error == "" {
		t.Error("cancelled job has no error string")
	}

	// The journal the cancelled job left must resume into the exact
	// uninterrupted result.
	uninterrupted, err := core.DiscoverFacts(context.Background(), mdl, ds.Train, core.NewEntityFrequency(), spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	res, info, err := Run(context.Background(), Spec{
		Model: mdl, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: spec.Options,
		Fingerprint: fp, Journal: filepath.Join(dir, j.ID()+".wal"), Resume: true,
	})
	if err != nil {
		t.Fatalf("resume of cancelled job: %v", err)
	}
	if info.Resumed < 2 {
		t.Fatalf("resumed only %d relations", info.Resumed)
	}
	if !factsEqual(uninterrupted.Facts, res.Facts) {
		t.Fatal("resume of cancelled job diverged from uninterrupted run")
	}
}

// TestManagerRetention exercises both eviction paths: the completed-count
// cap and the TTL sweep.
func TestManagerRetention(t *testing.T) {
	var inFlight, peak int64
	now := time.Unix(1_700_000_000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}
	m := NewManager(Config{
		Workers: 1, MaxCompleted: 3, TTL: time.Hour, Now: clock,
		Discover: stubDiscover(&inFlight, &peak, nil),
	})
	defer m.Close()
	spec := managerSpec(t)

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		waitState(t, j, StateDone)
	}
	// Trigger a sweep: only MaxCompleted finished jobs may survive.
	if got := len(m.List()); got != 3 {
		t.Fatalf("retained %d jobs, want 3", got)
	}
	if _, ok := m.Get(jobs[0].ID()); ok {
		t.Error("oldest job not evicted by count cap")
	}
	if _, ok := m.Get(jobs[5].ID()); !ok {
		t.Error("newest job evicted")
	}

	// Advance past the TTL: everything finished must go.
	nowMu.Lock()
	now = now.Add(2 * time.Hour)
	nowMu.Unlock()
	if got := len(m.List()); got != 0 {
		t.Fatalf("TTL sweep left %d jobs", got)
	}
	_, counters := m.Snapshot()
	if counters.Evicted != 6 {
		t.Fatalf("evicted counter %d, want 6", counters.Evicted)
	}
	if counters.Submitted != 6 || counters.Completed != 6 {
		t.Fatalf("counters %+v", counters)
	}
}

func TestManagerQueueFull(t *testing.T) {
	var inFlight, peak int64
	release := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 2, Discover: stubDiscover(&inFlight, &peak, release)})
	defer m.Close()
	spec := managerSpec(t)

	var submitted int
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, err := m.Submit(spec); err != nil {
			lastErr = err
			break
		}
		submitted++
	}
	close(release)
	if lastErr != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", lastErr)
	}
	// 2 queue slots plus up to 1 job already claimed by the worker.
	if submitted < 2 || submitted > 3 {
		t.Fatalf("submitted %d before queue full", submitted)
	}
}

func TestManagerCloseCancelsRunning(t *testing.T) {
	var inFlight, peak int64
	release := make(chan struct{}) // never closed: only ctx can end the job
	m := NewManager(Config{Workers: 1, Discover: stubDiscover(&inFlight, &peak, release)})
	j, err := m.Submit(managerSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel the running job")
	}
	if st := j.Status(); !st.State.Finished() {
		t.Fatalf("job state after Close: %s", st.State)
	}
	if _, err := m.Submit(managerSpec(t)); err == nil {
		t.Fatal("Submit accepted after Close")
	}
}

func TestManagerCancelUnknown(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	if _, err := m.Cancel("job-999999"); err == nil {
		t.Fatal("cancel of unknown job did not error")
	}
}

func TestManagerIDsAreUnique(t *testing.T) {
	var inFlight, peak int64
	m := NewManager(Config{Workers: 2, Discover: stubDiscover(&inFlight, &peak, nil)})
	defer m.Close()
	spec := managerSpec(t)
	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		j, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if seen[j.ID()] {
			t.Fatalf("duplicate id %s", j.ID())
		}
		seen[j.ID()] = true
	}
	if len(seen) != 20 {
		t.Fatal(fmt.Sprint("expected 20 unique ids, got ", len(seen)))
	}
}
