package jobs

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

// testArtifacts holds one trained tiny model shared by every test in the
// package; dataset and model are read-only once trained.
var testArtifacts struct {
	once sync.Once
	ds   *kg.Dataset
	m    kge.Trainable
	fp   string
	err  error
}

func testModel(t testing.TB) (*kg.Dataset, kge.Trainable, string) {
	t.Helper()
	testArtifacts.once.Do(func() {
		ds, err := synth.Generate(synth.Tiny())
		if err != nil {
			testArtifacts.err = err
			return
		}
		m, err := kge.New("distmult", kge.Config{
			NumEntities:  ds.Train.Entities.Len(),
			NumRelations: ds.Train.Relations.Len(),
			Dim:          8,
			Seed:         1,
		})
		if err != nil {
			testArtifacts.err = err
			return
		}
		if _, err := train.Run(context.Background(), m, ds, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
			testArtifacts.err = err
			return
		}
		testArtifacts.ds, testArtifacts.m = ds, m
		testArtifacts.fp = kge.Fingerprint(m)
	})
	if testArtifacts.err != nil {
		t.Fatalf("building test artifacts: %v", testArtifacts.err)
	}
	return testArtifacts.ds, testArtifacts.m, testArtifacts.fp
}

func testOptions() core.Options {
	return core.Options{TopN: 40, MaxCandidates: 30, Seed: 7}
}

func factsEqual(a, b []core.Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunMatchesDiscoverFacts: a journal-less Run is exactly DiscoverFacts.
func TestRunMatchesDiscoverFacts(t *testing.T) {
	ds, m, _ := testModel(t)
	direct, err := core.DiscoverFacts(context.Background(), m, ds.Train, core.NewEntityFrequency(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, info, err := Run(context.Background(), Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !factsEqual(direct.Facts, res.Facts) {
		t.Fatalf("Run facts differ from DiscoverFacts: %d vs %d", len(res.Facts), len(direct.Facts))
	}
	if info.Resumed != 0 || info.TotalRelations != ds.Train.NumRelations() {
		t.Fatalf("info = %+v", info)
	}
}

// TestRunResumeByteIdentical interrupts a journaled run partway (by
// cancelling from the progress hook), resumes it, and requires the merged
// result to equal an uninterrupted run exactly.
func TestRunResumeByteIdentical(t *testing.T) {
	ds, m, fp := testModel(t)
	uninterrupted, err := core.DiscoverFacts(context.Background(), m, ds.Train, core.NewEntityFrequency(), testOptions())
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "job.wal")
	ctx, cancel := context.WithCancel(context.Background())
	_, _, err = Run(ctx, Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
		Fingerprint: fp, Journal: journal,
		OnProgress: func(p Progress) {
			if p.Done == 2 { // kill the run after two relations are durable
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	res, info, err := Run(context.Background(), Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
		Fingerprint: fp, Journal: journal, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if info.Resumed < 2 || info.Resumed >= info.TotalRelations {
		t.Fatalf("resumed %d of %d relations, want a strict partial resume", info.Resumed, info.TotalRelations)
	}
	if !factsEqual(uninterrupted.Facts, res.Facts) {
		t.Fatalf("resumed facts differ from uninterrupted run: %d vs %d facts", len(res.Facts), len(uninterrupted.Facts))
	}
	// Aggregate counters must match too (they sum the same per-relation work).
	if res.Stats.Generated != uninterrupted.Stats.Generated ||
		res.Stats.ScoreSweeps != uninterrupted.Stats.ScoreSweeps ||
		res.Stats.Relations != uninterrupted.Stats.Relations {
		t.Fatalf("stats diverged: %+v vs %+v", res.Stats, uninterrupted.Stats)
	}
}

// TestRunResumeOfCompleteJournal replays a fully-journaled run without
// re-sweeping anything.
func TestRunResumeOfCompleteJournal(t *testing.T) {
	ds, m, fp := testModel(t)
	journal := filepath.Join(t.TempDir(), "job.wal")
	spec := Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
		Fingerprint: fp, Journal: journal,
	}
	first, _, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Resume = true
	calls := 0
	second, info, err := run(context.Background(), spec, func(ctx context.Context, _ kge.Model, _ *kg.Graph, _ core.Strategy, _ core.Options) (*core.Result, error) {
		calls++
		return nil, errors.New("should not be called")
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("complete journal still swept %d times", calls)
	}
	if info.Resumed != info.TotalRelations {
		t.Fatalf("resumed %d of %d", info.Resumed, info.TotalRelations)
	}
	if !factsEqual(first.Facts, second.Facts) {
		t.Fatal("replayed facts differ")
	}
}

// TestRunRejectsForeignCheckpoint: a journal from different weights or
// options must be a hard, descriptive error.
func TestRunRejectsForeignCheckpoint(t *testing.T) {
	ds, m, fp := testModel(t)
	journal := filepath.Join(t.TempDir(), "job.wal")
	spec := Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
		Fingerprint: fp, Journal: journal,
	}
	if _, _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	spec.Resume = true

	other := spec
	other.Fingerprint = "deadbeef"
	var mm *MismatchError
	if _, _, err := Run(context.Background(), other); !errors.As(err, &mm) || mm.Field != "fingerprint" {
		t.Fatalf("foreign fingerprint: err = %v, want fingerprint MismatchError", err)
	}

	other = spec
	other.Options.Seed = 999
	if _, _, err := Run(context.Background(), other); !errors.As(err, &mm) || mm.Field != "options" {
		t.Fatalf("foreign options: err = %v, want options MismatchError", err)
	}

	// Same parameters must still resume cleanly.
	if _, _, err := Run(context.Background(), spec); err != nil {
		t.Fatalf("matching resume failed: %v", err)
	}
}

// TestRunRefusesExistingWithoutResume: -checkpoint against an existing file
// without -resume is an error, not a silent overwrite or graft.
func TestRunRefusesExistingWithoutResume(t *testing.T) {
	ds, m, fp := testModel(t)
	journal := filepath.Join(t.TempDir(), "job.wal")
	spec := Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
		Fingerprint: fp, Journal: journal,
	}
	if _, _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), spec); !errors.Is(err, ErrCheckpointExists) {
		t.Fatalf("err = %v, want ErrCheckpointExists", err)
	}
}

// TestRunRelationSubsetDecomposition: running two disjoint relation subsets
// and merging equals one run over their union — the invariant the resume
// path is built on.
func TestRunRelationSubsetDecomposition(t *testing.T) {
	ds, m, _ := testModel(t)
	all := ds.Train.RelationIDs()
	if len(all) < 2 {
		t.Skip("need at least two relations")
	}
	opts := testOptions()
	whole, err := core.DiscoverFacts(context.Background(), m, ds.Train, core.NewGraphDegree(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var merged []core.Fact
	for _, subset := range [][]kg.RelationID{all[:1], all[1:]} {
		o := opts
		o.Relations = subset
		part, err := core.DiscoverFacts(context.Background(), m, ds.Train, core.NewGraphDegree(), o)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, part.Facts...)
	}
	core.SortFactsByRank(merged)
	if !factsEqual(whole.Facts, merged) {
		t.Fatalf("decomposed run differs: %d vs %d facts", len(merged), len(whole.Facts))
	}
}

// TestOptionsHashNormalization: explicit defaults and zero values hash
// identically; any output-relevant change rehashes.
func TestOptionsHashNormalization(t *testing.T) {
	ds, _, _ := testModel(t)
	rels := ds.Train.RelationIDs()
	base := OptionsHash("s", ds.Train, NormalizeOptions(core.Options{}), rels)
	explicit := OptionsHash("s", ds.Train, NormalizeOptions(core.Options{TopN: 500, MaxCandidates: 500, MaxIterations: 5}), rels)
	if base != explicit {
		t.Error("defaulted and explicit options hash differently")
	}
	workers := NormalizeOptions(core.Options{})
	workers.Workers = 8
	if OptionsHash("s", ds.Train, workers, rels) != base {
		t.Error("worker count changed the hash (it never changes output)")
	}
	seeded := NormalizeOptions(core.Options{Seed: 3})
	if OptionsHash("s", ds.Train, seeded, rels) == base {
		t.Error("seed change did not change the hash")
	}
	if OptionsHash("other", ds.Train, NormalizeOptions(core.Options{}), rels) == base {
		t.Error("strategy change did not change the hash")
	}
	// Relation order is canonicalized away.
	if len(rels) >= 2 {
		rev := append([]kg.RelationID(nil), rels...)
		rev[0], rev[1] = rev[1], rev[0]
		if OptionsHash("s", ds.Train, NormalizeOptions(core.Options{}), rev) != base {
			t.Error("relation order changed the hash")
		}
	}
}

// TestOptionsHashPruneCompat pins the pruning fields' back-compat contract:
// with pruning off they must not perturb the hash at all (pre-pruning
// checkpoints keep resuming), while any enabled pruning configuration must
// rehash.
func TestOptionsHashPruneCompat(t *testing.T) {
	ds, _, _ := testModel(t)
	rels := ds.Train.RelationIDs()
	base := OptionsHash("s", ds.Train, NormalizeOptions(core.Options{}), rels)

	off := NormalizeOptions(core.Options{PruneMode: core.PruneOff})
	if OptionsHash("s", ds.Train, off, rels) != base {
		t.Error(`PruneMode "off" changed the hash — old WALs would be rejected`)
	}
	// Stray knobs with pruning off are inert and must stay out of the hash.
	offKnobs := NormalizeOptions(core.Options{PruneMode: core.PruneOff, PruneCells: 64, PruneProbe: 3})
	if OptionsHash("s", ds.Train, offKnobs, rels) != base {
		t.Error("prune knobs changed the hash while pruning was off")
	}

	exact := NormalizeOptions(core.Options{PruneMode: core.PruneExact})
	exactHash := OptionsHash("s", ds.Train, exact, rels)
	if exactHash == base {
		t.Error("enabling exact pruning did not change the hash")
	}
	approx := NormalizeOptions(core.Options{PruneMode: core.PruneApprox})
	if OptionsHash("s", ds.Train, approx, rels) == exactHash {
		t.Error("exact and approx modes hash identically")
	}
	cells := NormalizeOptions(core.Options{PruneMode: core.PruneExact, PruneCells: 64})
	if OptionsHash("s", ds.Train, cells, rels) == exactHash {
		t.Error("cell count did not change the hash with pruning on")
	}
	// Probe only matters (and only hashes) in approx mode.
	exactProbe := NormalizeOptions(core.Options{PruneMode: core.PruneExact, PruneProbe: 3})
	if OptionsHash("s", ds.Train, exactProbe, rels) != exactHash {
		t.Error("probe changed the hash in exact mode, where it is ignored")
	}
	approxProbe := NormalizeOptions(core.Options{PruneMode: core.PruneApprox, PruneProbe: 3})
	if OptionsHash("s", ds.Train, approxProbe, rels) == OptionsHash("s", ds.Train, approx, rels) {
		t.Error("probe did not change the hash in approx mode")
	}
}

// TestOptionsHashGolden pins the exact digest for a fixed synthetic input.
// This hash is what decides whether existing WAL checkpoints resume: if this
// test fails, the canonical JSON changed shape and every deployed journal
// would be orphaned — only break it deliberately.
func TestOptionsHashGolden(t *testing.T) {
	g := kg.NewGraph()
	for _, name := range []string{"a", "b", "c"} {
		g.Entities.Intern(name)
	}
	g.Relations.Intern("likes")
	g.Relations.Intern("knows")
	g.Add(kg.Triple{S: 0, R: 0, O: 1})
	g.Add(kg.Triple{S: 1, R: 1, O: 2})
	g.Add(kg.Triple{S: 2, R: 0, O: 0})
	rels := []kg.RelationID{0, 1}

	const want = "2b27c453412be083ce2683a7d5861cde54e3e242dbeef17c8284feda9053385d"
	if got := OptionsHash("entity_frequency", g, NormalizeOptions(core.Options{Seed: 42}), rels); got != want {
		t.Errorf("pre-pruning options hash drifted:\n got %s\nwant %s", got, want)
	}
}

// TestRunProgressTicks: every relation reports exactly one tick with a
// consistent running total.
func TestRunProgressTicks(t *testing.T) {
	ds, m, _ := testModel(t)
	var ticks []Progress
	res, _, err := Run(context.Background(), Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
		OnProgress: func(p Progress) { ticks = append(ticks, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != ds.Train.NumRelations() {
		t.Fatalf("%d ticks, want one per relation (%d)", len(ticks), ds.Train.NumRelations())
	}
	sum := 0
	for i, p := range ticks {
		sum += p.Facts
		if p.Done != i+1 || p.Total != len(ticks) || p.FactsSum != sum {
			t.Fatalf("tick %d inconsistent: %+v (running sum %d)", i, p, sum)
		}
	}
	if sum != len(res.Facts) {
		t.Fatalf("ticks sum to %d facts, result has %d", sum, len(res.Facts))
	}
}

// TestJournalOnDiskIsPlainJSONL sanity-checks the on-disk format the docs
// promise: one JSON object per line.
func TestJournalOnDiskIsPlainJSONL(t *testing.T) {
	ds, m, fp := testModel(t)
	journal := filepath.Join(t.TempDir(), "job.wal")
	if _, _, err := Run(context.Background(), Spec{
		Model: m, Graph: ds.Train, Strategy: core.NewEntityFrequency(), Options: testOptions(),
		Fingerprint: fp, Journal: journal,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	hdr, recs, valid := Decode(data)
	if valid != len(data) {
		t.Fatalf("journal has invalid bytes: %d of %d valid", valid, len(data))
	}
	if hdr.Strategy != "entity_frequency" || hdr.TotalRelations != ds.Train.NumRelations() {
		t.Fatalf("header: %+v", hdr)
	}
	if len(recs) != ds.Train.NumRelations() {
		t.Fatalf("%d records, want %d", len(recs), ds.Train.NumRelations())
	}
	seen := map[kg.RelationID]bool{}
	for _, rec := range recs {
		seen[rec.Relation] = true
	}
	if !reflect.DeepEqual(len(seen), len(recs)) {
		t.Fatal("duplicate relations in journal")
	}
}

// TestOnRelationCollectsMergeableRecords: the OnRelation hook yields one
// record per swept relation, and MergeRecords splices them — in any order —
// into a result whose facts match an uninterrupted run exactly. This is the
// invariant the fleet coordinator's byte-identity claim rests on.
func TestOnRelationCollectsMergeableRecords(t *testing.T) {
	ds, m, _ := testModel(t)
	direct, err := core.DiscoverFacts(context.Background(), m, ds.Train, core.NewEntityFrequency(), testOptions())
	if err != nil {
		t.Fatal(err)
	}

	var records []RelationRecord
	_, _, err = Run(context.Background(), Spec{
		Model:      m,
		Graph:      ds.Train,
		Strategy:   core.NewEntityFrequency(),
		Options:    testOptions(),
		OnRelation: func(rec RelationRecord) { records = append(records, rec) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ds.Train.RelationIDs()); len(records) != want {
		t.Fatalf("OnRelation fired %d times, want %d", len(records), want)
	}

	// Reverse the delivery order: completion order across a fleet is
	// arbitrary, and the merge must not care.
	for i, j := 0, len(records)-1; i < j; i, j = i+1, j-1 {
		records[i], records[j] = records[j], records[i]
	}
	merged := MergeRecords(records)
	if !factsEqual(direct.Facts, merged.Facts) {
		t.Fatalf("merged facts differ from direct run: %d vs %d facts", len(merged.Facts), len(direct.Facts))
	}
	if merged.Stats.Relations != direct.Stats.Relations {
		t.Fatalf("merged %d relations, direct %d", merged.Stats.Relations, direct.Stats.Relations)
	}
	if merged.Stats.Generated != direct.Stats.Generated {
		t.Fatalf("merged Generated %d, direct %d", merged.Stats.Generated, direct.Stats.Generated)
	}
}

// TestOnRelationFactsAreCopies: records handed to OnRelation must not alias
// core's reusable fact buffers — a worker keeps them until the unit uploads.
func TestOnRelationFactsAreCopies(t *testing.T) {
	ds, m, _ := testModel(t)
	var records []RelationRecord
	res, _, err := Run(context.Background(), Spec{
		Model:      m,
		Graph:      ds.Train,
		Strategy:   core.NewEntityFrequency(),
		Options:    testOptions(),
		OnRelation: func(rec RelationRecord) { records = append(records, rec) },
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeRecords(records)
	if !factsEqual(res.Facts, merged.Facts) {
		t.Fatal("records retained after their callbacks no longer reproduce the run's facts")
	}
}
