// Package jobs makes discovery runs durable and asynchronous. A run of
// Algorithm 1 over all relations is the paper's headline cost — runtime and
// facts-per-hour are two of its three metrics — so a production deployment
// cannot afford to lose a half-finished sweep to a crash or hold an HTTP
// request open for its whole duration.
//
// The package decomposes a core.DiscoverFacts run into per-relation units
// (core seeds each relation's RNG stream independently, so the decomposition
// is exact): Run journals every completed relation to an append-only JSONL
// write-ahead log, fsync'd record by record, and on restart resumes from the
// longest valid journal prefix — a resumed run produces byte-identical
// output to an uninterrupted one. The journal header pins the model's
// canonical weight fingerprint and a hash of the canonicalized options, so a
// checkpoint written under different weights or parameters is rejected
// instead of silently reused. Manager runs jobs on a bounded worker pool
// with cancellation, status snapshots, and bounded retention of completed
// results; internal/serve exposes it as the async /jobs API and kgdiscover
// as the -checkpoint/-resume flags.
package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
)

// journalVersion is the current wire-format version of the WAL. A version
// bump invalidates old checkpoints (Recover reports a mismatch) rather than
// risking a wrong resume.
const journalVersion = 1

// Header is the first record of every journal. It pins the identity of the
// run: a checkpoint only resumes under the same model weights
// (Fingerprint, from kge.Fingerprint) and the same canonicalized options
// (OptionsHash, from OptionsHash).
type Header struct {
	Version        int    `json:"version"`
	Fingerprint    string `json:"fingerprint"`
	OptionsHash    string `json:"options_hash"`
	Strategy       string `json:"strategy"`
	TotalRelations int    `json:"total_relations"`
}

// FactRecord is one discovered fact in the journal's wire format.
type FactRecord struct {
	S    kg.EntityID   `json:"s"`
	R    kg.RelationID `json:"r"`
	O    kg.EntityID   `json:"o"`
	Rank int           `json:"rank"`
}

// StatsRecord is core.RelationStats with durations flattened to integer
// nanoseconds so the encoding is stable and trivially comparable.
type StatsRecord struct {
	WeightNS    int64 `json:"weight_ns"`
	GenerateNS  int64 `json:"generate_ns"`
	RankNS      int64 `json:"rank_ns"`
	Generated   int   `json:"generated"`
	Iterations  int   `json:"iterations"`
	ScoreSweeps int   `json:"score_sweeps"`
	// Batch counters journal as omitempty so records from runs predating
	// relation-blocked ranking (or with it disabled) stay byte-stable;
	// decoding an old record yields zeros, which is also what those runs
	// measured.
	BatchedSweeps int `json:"batched_sweeps,omitempty"`
	BatchRows     int `json:"batch_rows,omitempty"`
	// Prune counters follow the same omitempty pattern: zero (and absent)
	// for every run with pruning off, including all pre-pruning journals.
	CellsPruned   int `json:"cells_pruned,omitempty"`
	PrescreenRows int `json:"prescreen_rows,omitempty"`
}

// RelationRecord marks one relation's sweep complete: the facts it kept and
// the stats of its sweep. Appending (and fsyncing) one of these is the
// durability unit of a job.
type RelationRecord struct {
	Relation kg.RelationID `json:"relation"`
	Facts    []FactRecord  `json:"facts"`
	Stats    StatsRecord   `json:"stats"`
}

// record is the tagged union written inside each journal line.
type record struct {
	Header   *Header         `json:"header,omitempty"`
	Relation *RelationRecord `json:"relation,omitempty"`
}

// envelope frames one journal line: the serialized record plus its IEEE
// CRC32, so corruption that still parses as JSON is detected.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// encodeLine renders one framed journal line including the trailing newline.
func encodeLine(rec record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(body), Rec: body})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// decodeLine parses one framed line. It reports ok=false for anything
// malformed: invalid JSON, a CRC mismatch, or a record that is neither a
// header nor a relation (or claims to be both).
func decodeLine(line []byte) (record, bool) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return record{}, false
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return record{}, false
	}
	var rec record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return record{}, false
	}
	if (rec.Header == nil) == (rec.Relation == nil) {
		return record{}, false
	}
	return rec, true
}

// Decode scans journal bytes and returns the longest valid prefix: the
// header (nil if even the first line is unusable), the relation records that
// follow it, and the byte length of the prefix. It never fails and never
// panics — a truncated, corrupted, or garbage-interleaved tail simply ends
// the prefix. The final line is accepted without a trailing newline iff it
// still frames and checksums correctly (a crash can land exactly between
// the write and the newline reaching disk). A duplicate record for an
// already-seen relation ends the prefix too: the writer never produces one,
// so its presence means the tail is not trustworthy.
func Decode(data []byte) (hdr *Header, recs []RelationRecord, validLen int) {
	seen := make(map[kg.RelationID]bool)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		var line []byte
		lineEnd := 0
		if nl < 0 {
			line = data[off:]
			lineEnd = len(data)
		} else {
			line = data[off : off+nl]
			lineEnd = off + nl + 1
		}
		rec, ok := decodeLine(line)
		if !ok {
			return hdr, recs, off
		}
		switch {
		case rec.Header != nil:
			if hdr != nil { // second header: untrustworthy tail
				return hdr, recs, off
			}
			hdr = rec.Header
		case rec.Relation != nil:
			if hdr == nil || seen[rec.Relation.Relation] {
				return hdr, recs, off
			}
			seen[rec.Relation.Relation] = true
			recs = append(recs, *rec.Relation)
		}
		off = lineEnd
	}
	return hdr, recs, off
}

// ErrCheckpointExists reports that Create found a journal already on disk
// and resume was not requested.
var ErrCheckpointExists = errors.New("jobs: checkpoint file already exists (pass resume to continue it)")

// MismatchError reports a checkpoint that cannot be resumed under the
// current model or options. It is always a hard error: silently reusing a
// stale checkpoint would splice facts from different weights or parameters
// into one output.
type MismatchError struct {
	Field string // "version", "fingerprint", or "options"
	Want  string // value the current run requires
	Got   string // value found in the journal
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("jobs: checkpoint %s mismatch: journal was written with %s %q, this run has %q — delete the checkpoint or rerun with the original configuration",
		e.Field, e.Field, e.Got, e.Want)
}

// Journal appends framed records to a WAL file, fsyncing after every append
// so a completed relation survives any crash.
type Journal struct {
	f *os.File
}

// Create starts a fresh journal at path, writing and syncing the header.
// It refuses to overwrite an existing file with ErrCheckpointExists.
func Create(path string, h Header) (*Journal, error) {
	h.Version = journalVersion
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("%w: %s", ErrCheckpointExists, path)
		}
		return nil, err
	}
	j := &Journal{f: f}
	if err := j.append(record{Header: &h}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// Recover opens an existing journal for resumption: it decodes the longest
// valid prefix, validates the header against want (version, fingerprint,
// options hash), truncates any invalid tail, and reopens the file for
// appending. The returned records are the relations already complete.
// A missing file is not an error — Recover falls back to Create.
func Recover(path string, want Header) (*Journal, []RelationRecord, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		j, cerr := Create(path, want)
		return j, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	hdr, recs, valid := Decode(data)
	if hdr == nil {
		return nil, nil, fmt.Errorf("jobs: %s is not a discovery checkpoint (no valid header)", path)
	}
	if hdr.Version != journalVersion {
		return nil, nil, &MismatchError{Field: "version", Want: fmt.Sprint(journalVersion), Got: fmt.Sprint(hdr.Version)}
	}
	if hdr.Fingerprint != want.Fingerprint {
		return nil, nil, &MismatchError{Field: "fingerprint", Want: want.Fingerprint, Got: hdr.Fingerprint}
	}
	if hdr.OptionsHash != want.OptionsHash {
		return nil, nil, &MismatchError{Field: "options", Want: want.OptionsHash, Got: hdr.OptionsHash}
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop the corrupt tail (if any) so appends extend the valid prefix.
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f}, recs, nil
}

// Append durably records one completed relation: the line is written and
// the file fsync'd before Append returns.
func (j *Journal) Append(rec RelationRecord) error {
	return j.append(record{Relation: &rec})
}

func (j *Journal) append(rec record) error {
	line, err := encodeLine(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// RecordOf converts one OnRelationDone payload to its journal/wire form.
// It deep-copies the facts: RelationDone.Facts aliases core's internal
// buffers and is only valid during the callback, but a RelationRecord is a
// value callers may keep, journal, or ship across a network.
func RecordOf(d core.RelationDone) RelationRecord {
	rec := RelationRecord{
		Relation: d.Relation,
		Stats: StatsRecord{
			WeightNS:      int64(d.Stats.WeightTime),
			GenerateNS:    int64(d.Stats.GenerateTime),
			RankNS:        int64(d.Stats.RankTime),
			Generated:     d.Stats.Generated,
			Iterations:    d.Stats.Iterations,
			ScoreSweeps:   d.Stats.ScoreSweeps,
			BatchedSweeps: d.Stats.BatchedSweeps,
			BatchRows:     d.Stats.BatchRows,
			CellsPruned:   d.Stats.CellsPruned,
			PrescreenRows: d.Stats.PrescreenRows,
		},
	}
	for _, f := range d.Facts {
		rec.Facts = append(rec.Facts, FactRecord{S: f.Triple.S, R: f.Triple.R, O: f.Triple.O, Rank: f.Rank})
	}
	return rec
}

// relationStatsOf converts a journaled record back to core.RelationStats.
func relationStatsOf(rec RelationRecord) core.RelationStats {
	return core.RelationStats{
		Relation:      rec.Relation,
		WeightTime:    time.Duration(rec.Stats.WeightNS),
		GenerateTime:  time.Duration(rec.Stats.GenerateNS),
		RankTime:      time.Duration(rec.Stats.RankNS),
		Generated:     rec.Stats.Generated,
		Iterations:    rec.Stats.Iterations,
		ScoreSweeps:   rec.Stats.ScoreSweeps,
		BatchedSweeps: rec.Stats.BatchedSweeps,
		BatchRows:     rec.Stats.BatchRows,
		CellsPruned:   rec.Stats.CellsPruned,
		PrescreenRows: rec.Stats.PrescreenRows,
		Facts:         len(rec.Facts),
	}
}
