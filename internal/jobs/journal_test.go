package jobs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kg"
)

func testHeader() Header {
	return Header{Version: journalVersion, Fingerprint: "fp", OptionsHash: "oh", Strategy: "entity_frequency", TotalRelations: 3}
}

func testRecord(r kg.RelationID, nfacts int) RelationRecord {
	rec := RelationRecord{Relation: r, Stats: StatsRecord{Generated: nfacts * 2, Iterations: 1, ScoreSweeps: nfacts}}
	for i := 0; i < nfacts; i++ {
		rec.Facts = append(rec.Facts, FactRecord{S: kg.EntityID(i), R: r, O: kg.EntityID(i + 1), Rank: i + 1})
	}
	return rec
}

// writeJournal builds a journal file with the header and records.
func writeJournal(t *testing.T, path string, h Header, recs ...RelationRecord) {
	t.Helper()
	j, err := Create(path, h)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeJournal(t, path, testHeader(), testRecord(0, 2), testRecord(1, 0), testRecord(2, 5))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, recs, valid := Decode(data)
	if hdr == nil {
		t.Fatal("no header decoded")
	}
	if valid != len(data) {
		t.Fatalf("valid prefix %d, want full file %d", valid, len(data))
	}
	if hdr.Fingerprint != "fp" || hdr.OptionsHash != "oh" || hdr.TotalRelations != 3 {
		t.Fatalf("header round-trip mismatch: %+v", hdr)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	if len(recs[0].Facts) != 2 || len(recs[1].Facts) != 0 || len(recs[2].Facts) != 5 {
		t.Fatalf("fact counts wrong: %d/%d/%d", len(recs[0].Facts), len(recs[1].Facts), len(recs[2].Facts))
	}
	if recs[2].Facts[4] != (FactRecord{S: 4, R: 2, O: 5, Rank: 5}) {
		t.Fatalf("fact round-trip mismatch: %+v", recs[2].Facts[4])
	}
}

func TestDecodeTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeJournal(t, path, testHeader(), testRecord(0, 3), testRecord(1, 3))
	data, _ := os.ReadFile(path)

	// Chop the file at every length; the decode must never panic and must
	// recover a prefix of the intact decoding.
	for cut := 0; cut <= len(data); cut++ {
		hdr, recs, valid := Decode(data[:cut])
		if valid > cut {
			t.Fatalf("cut=%d: valid prefix %d beyond input", cut, valid)
		}
		if len(recs) > 0 && hdr == nil {
			t.Fatalf("cut=%d: records without header", cut)
		}
		if len(recs) >= 1 && recs[0].Relation != 0 {
			t.Fatalf("cut=%d: first record relation %d", cut, recs[0].Relation)
		}
	}
}

func TestDecodeCorruptAndInterleaved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeJournal(t, path, testHeader(), testRecord(0, 2))
	good, _ := os.ReadFile(path)

	cases := map[string][]byte{
		"garbage line appended":  append(append([]byte{}, good...), []byte("not json at all\n")...),
		"valid json bad crc":     append(append([]byte{}, good...), []byte(`{"crc":1,"rec":{"relation":{"relation":9,"facts":null,"stats":{"weight_ns":0,"generate_ns":0,"rank_ns":0,"generated":0,"iterations":0,"score_sweeps":0}}}}`+"\n")...),
		"flipped byte in middle": flipByte(good, len(good)/2),
		"binary junk appended":   append(append([]byte{}, good...), 0x00, 0xff, 0x7f, '\n'),
	}
	for name, data := range cases {
		hdr, recs, valid := Decode(data)
		if valid > len(data) {
			t.Errorf("%s: valid prefix beyond input", name)
		}
		// The valid prefix must itself re-decode to the same result.
		hdr2, recs2, valid2 := Decode(data[:valid])
		if valid2 != valid || (hdr == nil) != (hdr2 == nil) || len(recs) != len(recs2) {
			t.Errorf("%s: prefix not stable under re-decode (%d/%d recs, %d/%d bytes)", name, len(recs), len(recs2), valid, valid2)
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0x20
	return out
}

func TestRecoverTruncatesCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeJournal(t, path, testHeader(), testRecord(0, 2), testRecord(1, 2))
	data, _ := os.ReadFile(path)
	// Simulate a crash mid-append: half of the final record reached disk.
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	j, recs, err := Recover(path, testHeader())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recs) != 1 || recs[0].Relation != 0 {
		t.Fatalf("recovered %d records, want just relation 0", len(recs))
	}
	// Appending after recovery must extend the now-clean prefix.
	if err := j.Append(testRecord(2, 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data2, _ := os.ReadFile(path)
	_, recs2, valid := Decode(data2)
	if valid != len(data2) || len(recs2) != 2 || recs2[1].Relation != 2 {
		t.Fatalf("post-recovery journal unclean: %d records, %d/%d valid bytes", len(recs2), valid, len(data2))
	}
}

func TestRecoverRejectsMismatches(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		want Header
	}{
		{"fingerprint", Header{Version: journalVersion, Fingerprint: "OTHER", OptionsHash: "oh"}},
		{"options", Header{Version: journalVersion, Fingerprint: "fp", OptionsHash: "OTHER"}},
	} {
		path := filepath.Join(dir, tc.name+".wal")
		writeJournal(t, path, testHeader(), testRecord(0, 1))
		_, _, err := Recover(path, tc.want)
		var mm *MismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("%s: err = %v, want MismatchError", tc.name, err)
		}
		if mm.Field != tc.name {
			t.Errorf("%s: mismatch field %q", tc.name, mm.Field)
		}
		if !bytes.Contains([]byte(err.Error()), []byte("mismatch")) {
			t.Errorf("%s: error not descriptive: %v", tc.name, err)
		}
	}
}

func TestRecoverMissingFileCreatesFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.wal")
	j, recs, err := Recover(path, testHeader())
	if err != nil {
		t.Fatalf("Recover on missing file: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	j.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file not created: %v", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeJournal(t, path, testHeader())
	if _, err := Create(path, testHeader()); !errors.Is(err, ErrCheckpointExists) {
		t.Fatalf("err = %v, want ErrCheckpointExists", err)
	}
}

func TestDecodeRejectsDuplicateRelations(t *testing.T) {
	var buf bytes.Buffer
	h := testHeader()
	for _, rec := range []record{{Header: &h}, {Relation: &RelationRecord{Relation: 1}}, {Relation: &RelationRecord{Relation: 1}}} {
		line, err := encodeLine(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	_, recs, _ := Decode(buf.Bytes())
	if len(recs) != 1 {
		t.Fatalf("duplicate relation accepted: %d records", len(recs))
	}
}
