package jobs

import (
	"bytes"
	"testing"

	"repro/internal/kg"
)

// FuzzJournalDecode throws arbitrary bytes at the WAL decoder. The resume
// path feeds Decode whatever a crash left on disk, so the invariants are
// absolute: never panic, never claim a prefix longer than the input, and
// the claimed prefix must be stable — re-decoding it yields the same
// header and records, and appending garbage after it never grows it.
func FuzzJournalDecode(f *testing.F) {
	// Seed corpus: a healthy journal, truncations of it, corruptions, and
	// interleaved garbage.
	h := Header{Version: journalVersion, Fingerprint: "fp", OptionsHash: "oh", Strategy: "s", TotalRelations: 2}
	var healthy bytes.Buffer
	for _, rec := range []record{
		{Header: &h},
		{Relation: &RelationRecord{Relation: 0, Facts: []FactRecord{{S: 1, R: 0, O: 2, Rank: 3}}, Stats: StatsRecord{Generated: 4, ScoreSweeps: 1}}},
		{Relation: &RelationRecord{Relation: 1, Stats: StatsRecord{Iterations: 5}}},
	} {
		line, err := encodeLine(rec)
		if err != nil {
			f.Fatal(err)
		}
		healthy.Write(line)
	}
	hb := healthy.Bytes()
	f.Add(hb)
	f.Add(hb[:len(hb)/2])
	f.Add(hb[:len(hb)-1])
	f.Add(append(append([]byte{}, hb...), []byte("{\"crc\":0,\"rec\":{}}\n")...))
	f.Add(append(append([]byte{}, hb...), 0x00, 0xff, '\n'))
	f.Add(flipByte(hb, len(hb)/3))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{}"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, valid := Decode(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if hdr == nil && len(recs) > 0 {
			t.Fatal("relation records without a header")
		}
		seen := make(map[kg.RelationID]bool, len(recs))
		for _, rec := range recs {
			if seen[rec.Relation] {
				t.Fatalf("duplicate relation %d survived decode", rec.Relation)
			}
			seen[rec.Relation] = true
		}

		// Re-decoding the claimed prefix must reproduce the result exactly.
		hdr2, recs2, valid2 := Decode(data[:valid])
		if valid2 != valid {
			t.Fatalf("prefix unstable: %d then %d bytes", valid, valid2)
		}
		if (hdr == nil) != (hdr2 == nil) {
			t.Fatal("prefix unstable: header appeared/disappeared")
		}
		if hdr != nil && *hdr != *hdr2 {
			t.Fatalf("prefix unstable: header %+v then %+v", hdr, hdr2)
		}
		if len(recs) != len(recs2) {
			t.Fatalf("prefix unstable: %d then %d records", len(recs), len(recs2))
		}

		// Garbage appended after a valid prefix must not extend it. (Only
		// checkable when the prefix ends at a line boundary: a valid but
		// unterminated final line would be merged with the appended bytes.)
		if valid == 0 || data[valid-1] == '\n' {
			garbled := append(append([]byte{}, data[:valid]...), []byte("!corrupt tail")...)
			_, recs3, valid3 := Decode(garbled)
			if valid3 != valid || len(recs3) != len(recs) {
				t.Fatalf("garbage tail changed prefix: %d/%d bytes, %d/%d records", valid3, valid, len(recs3), len(recs))
			}
		}
	})
}
