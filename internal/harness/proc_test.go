package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRepoRoot(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("RepoRoot %s has no go.mod: %v", root, err)
	}
}

func TestTryBuildCmdRejectsPaths(t *testing.T) {
	for _, name := range []string{"../evil", "a/b", "x.go"} {
		if _, err := TryBuildCmd(name); err == nil {
			t.Errorf("TryBuildCmd(%q) should fail", name)
		}
	}
}

func TestProcLifecycle(t *testing.T) {
	dir := t.TempDir()
	p := StartProc(t, filepath.Join(dir, "p.log"), "/bin/sh", "-c",
		`echo "listening on 127.0.0.1:12345"; sleep 60`)
	addr := p.MustWaitLine(t, `listening on (\S+)`, 5*time.Second)
	if addr != "127.0.0.1:12345" {
		t.Errorf("scraped addr %q", addr)
	}
	if p.Exited() {
		t.Error("process reported exited while sleeping")
	}
	if err := p.Wait(50 * time.Millisecond); err == nil {
		t.Error("Wait should time out on a sleeping process")
	}
	p.Kill()
	p.Kill() // idempotent
	if !p.Exited() {
		t.Error("killed process not reaped")
	}
	if !strings.Contains(p.Log(), "listening on") {
		t.Errorf("log lost: %q", p.Log())
	}
}

func TestProcWaitCleanExit(t *testing.T) {
	dir := t.TempDir()
	p := StartProc(t, filepath.Join(dir, "p.log"), "/bin/sh", "-c", "exit 0")
	if err := p.Wait(5 * time.Second); err != nil {
		t.Errorf("clean exit reported error: %v", err)
	}
	p = StartProc(t, filepath.Join(dir, "q.log"), "/bin/sh", "-c", "exit 3")
	if err := p.Wait(5 * time.Second); err == nil {
		t.Error("exit 3 reported no error")
	}
}

func TestPollUntil(t *testing.T) {
	n := 0
	if !PollUntil(time.Second, func() bool { n++; return n >= 3 }) {
		t.Error("PollUntil never satisfied")
	}
	if PollUntil(50*time.Millisecond, func() bool { return false }) {
		t.Error("PollUntil reported success on a false condition")
	}
}
