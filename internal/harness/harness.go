// Package harness orchestrates the paper's experimental study: it prepares
// the four simulated benchmark datasets, trains every KGE model on each,
// runs the fact discovery sweep over every sampling strategy, and renders
// the rows/series behind each table and figure of the evaluation section
// (Table 1, Figures 2–10, and the CLUSTERING SQUARES exclusion experiment).
//
// The harness caches trained models on disk so that the per-figure commands
// of cmd/repro can share one training pass.
package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

// Config holds the sweep-wide knobs. Zero values select the defaults used
// by cmd/repro.
type Config struct {
	// Scale divides the paper's dataset sizes (entities and triples);
	// relation counts are kept exactly. Zero means 10.
	Scale int
	// Models lists the KGE models to sweep; nil means the paper's five
	// (ComplEx, ConvE, DistMult, RESCAL, TransE).
	Models []string
	// Strategies lists the sampling strategies to sweep; nil means the five
	// the paper compares (CLUSTERING SQUARES excluded, as in §4.3).
	Strategies []string
	// Dim is the embedding size; zero means 32.
	Dim int
	// Epochs is the training budget per model; zero means 25.
	Epochs int
	// TopN and MaxCandidates are the discovery hyperparameters; zero means
	// 500 each (§4.3's chosen values).
	TopN          int
	MaxCandidates int
	// TopNFraction, when > 0, overrides TopN per dataset with
	// ⌈fraction·|E|⌉, keeping the rank filter's *selectivity* constant
	// across dataset scales. The paper's absolute top_n = 500 is ~3% of
	// FB15K-237's entities; at reduced scales the absolute value becomes
	// weakly selective (see EXPERIMENTS.md, Figure 6 note) — this knob
	// reproduces the paper's selectivity instead of its absolute value.
	TopNFraction float64
	// Seed drives everything downstream.
	Seed int64
	// CacheDir, when non-empty, persists trained models between runs.
	CacheDir string
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (c *Config) setDefaults() {
	if c.Scale == 0 {
		c.Scale = 10
	}
	if c.Models == nil {
		c.Models = PaperModels()
	}
	if c.Strategies == nil {
		c.Strategies = PaperStrategies()
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 25
	}
	if c.TopN == 0 {
		c.TopN = 500
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PaperModels returns the five models of the paper's experiments, in the
// order its conclusion lists them.
func PaperModels() []string {
	return []string{"complex", "conve", "distmult", "rescal", "transe"}
}

// PaperStrategies returns the five strategies of the comparative
// experiments in the paper's x-axis order (UNIFORM RANDOM, ENTITY
// FREQUENCY, GRAPH DEGREE, CLUSTERING COEFFICIENT, CLUSTERING TRIANGLES).
func PaperStrategies() []string {
	return []string{
		"uniform_random",
		"entity_frequency",
		"graph_degree",
		"cluster_coefficient",
		"cluster_triangles",
	}
}

// Runner caches datasets and trained models across experiments.
type Runner struct {
	Cfg      Config
	datasets map[string]*kg.Dataset
	models   map[string]kge.Trainable // key: dataset/model
}

// NewRunner returns a Runner with defaults applied.
func NewRunner(cfg Config) *Runner {
	cfg.setDefaults()
	return &Runner{
		Cfg:      cfg,
		datasets: make(map[string]*kg.Dataset),
		models:   make(map[string]kge.Trainable),
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Cfg.Log != nil {
		fmt.Fprintf(r.Cfg.Log, format+"\n", args...)
	}
}

// DatasetNames returns the simulated dataset names in the paper's order.
func DatasetNames() []string {
	return []string{"fb15k237-sim", "wn18rr-sim", "yago310-sim", "codexl-sim"}
}

// presetFor maps a dataset name to its generator config at the given scale.
func presetFor(name string, scale int) (synth.Config, error) {
	switch name {
	case "fb15k237-sim":
		return synth.FB15K237Sim(scale), nil
	case "wn18rr-sim":
		return synth.WN18RRSim(scale), nil
	case "yago310-sim":
		return synth.YAGO310Sim(scale), nil
	case "codexl-sim":
		return synth.CoDExLSim(scale), nil
	default:
		return synth.Config{}, fmt.Errorf("harness: unknown dataset %q", name)
	}
}

// Dataset returns (generating and caching) the named simulated dataset.
func (r *Runner) Dataset(name string) (*kg.Dataset, error) {
	if ds, ok := r.datasets[name]; ok {
		return ds, nil
	}
	cfg, err := presetFor(name, r.Cfg.Scale)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ds, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: generate %s: %w", name, err)
	}
	r.logf("dataset %-13s generated in %s: %s", name, time.Since(start).Round(time.Millisecond), ds.Metadata())
	r.datasets[name] = ds
	return ds, nil
}

// Model returns (training and caching) the named model on the named
// dataset. Models are cached in memory and, when Config.CacheDir is set, on
// disk keyed by (dataset, model, scale, dim, epochs, seed).
func (r *Runner) Model(ctx context.Context, dataset, model string) (kge.Trainable, error) {
	key := dataset + "/" + model
	if m, ok := r.models[key]; ok {
		return m, nil
	}
	ds, err := r.Dataset(dataset)
	if err != nil {
		return nil, err
	}

	var cachePath string
	if r.Cfg.CacheDir != "" {
		cachePath = filepath.Join(r.Cfg.CacheDir, fmt.Sprintf("%s-%s-s%d-d%d-e%d-seed%d.kge",
			dataset, model, r.Cfg.Scale, r.Cfg.Dim, r.Cfg.Epochs, r.Cfg.Seed))
		if m, err := kge.LoadFile(cachePath); err == nil {
			r.logf("model %-22s loaded from cache", key)
			r.models[key] = m
			return m, nil
		}
	}

	m, err := kge.New(model, kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          r.Cfg.Dim,
		Seed:         r.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, err = train.Run(ctx, m, ds, train.Config{
		Epochs:     r.Cfg.Epochs,
		BatchSize:  256,
		NegSamples: 4,
		Seed:       r.Cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: train %s: %w", key, err)
	}
	quick := eval.Evaluate(eval.NewRanker(m, ds.All()), ds.Valid, eval.Options{MaxTriples: 200})
	r.logf("model %-22s trained in %-8s valid MRR %.4f",
		key, time.Since(start).Round(time.Millisecond), quick.MRR)

	if cachePath != "" {
		if err := os.MkdirAll(r.Cfg.CacheDir, 0o755); err == nil {
			if err := kge.SaveFile(m, cachePath); err != nil {
				r.logf("warning: cache %s: %v", cachePath, err)
			}
		}
	}
	r.models[key] = m
	return m, nil
}
