package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// RenderTable writes an aligned ASCII table.
func RenderTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range rows {
		line(row)
	}
}

// WriteCSV writes headers+rows to path, creating parent directories.
func WriteCSV(path string, headers []string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	if err := cw.Write(headers); err != nil {
		f.Close()
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RenderBars writes a simple horizontal bar chart: one line per (label,
// value), scaled so the largest value spans width characters. It is the
// terminal stand-in for the paper's bar figures.
func RenderBars(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintln(w, title)
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	const width = 46
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * width)
		}
		fmt.Fprintf(w, "  %-*s %s %.4g %s\n", maxL, labels[i], strings.Repeat("█", n), v, unit)
	}
}
