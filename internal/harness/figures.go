package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graphstats"
	"repro/internal/kg"
	"repro/internal/plot"
)

// Table1 renders the dataset metadata table (paper Table 1) for the
// simulated datasets and returns the metadata rows. When outDir is
// non-empty, a CSV copy is written.
func (r *Runner) Table1(w io.Writer, outDir string) ([]kg.Metadata, error) {
	var metas []kg.Metadata
	var rows [][]string
	for _, name := range DatasetNames() {
		ds, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		m := ds.Metadata()
		metas = append(metas, m)
		rows = append(rows, []string{
			m.Name,
			fmt.Sprintf("%d", m.Train),
			fmt.Sprintf("%d", m.Validation),
			fmt.Sprintf("%d", m.Test),
			fmt.Sprintf("%d", m.Entities),
			fmt.Sprintf("%d", m.Relations),
		})
	}
	headers := []string{"Dataset", "Training", "Validation", "Test", "Entities", "Relations"}
	fmt.Fprintf(w, "Table 1: Metadata of the simulated datasets (scale 1/%d).\n\n", r.Cfg.Scale)
	RenderTable(w, headers, rows)
	if outDir != "" {
		if err := WriteCSV(filepath.Join(outDir, "table1.csv"), headers, rows); err != nil {
			return nil, err
		}
	}
	return metas, nil
}

// sweepFigure renders one projection of the sweep (Figure 2, 4 or 6): a
// strategy × model table per dataset plus per-strategy averages as bars.
func sweepFigure(w io.Writer, outDir, fileName, title, unit string,
	records []SweepRecord, models, strategies []string, value func(SweepRecord) float64) error {

	byKey := make(map[string]SweepRecord, len(records))
	datasets := orderedDatasets(records)
	for _, rec := range records {
		byKey[rec.Dataset+"/"+rec.Model+"/"+rec.Strategy] = rec
	}

	var csvRows [][]string
	fmt.Fprintf(w, "%s\n", title)
	for _, ds := range datasets {
		fmt.Fprintf(w, "\n(%s)\n", ds)
		headers := append([]string{"strategy"}, models...)
		var rows [][]string
		stratAvg := make([]float64, len(strategies))
		for si, st := range strategies {
			row := []string{st}
			var sum float64
			var n int
			for _, mo := range models {
				rec, ok := byKey[ds+"/"+mo+"/"+st]
				if !ok {
					row = append(row, "-")
					continue
				}
				v := value(rec)
				sum += v
				n++
				row = append(row, fmt.Sprintf("%.4g", v))
				csvRows = append(csvRows, []string{ds, mo, st, fmt.Sprintf("%g", v)})
			}
			if n > 0 {
				stratAvg[si] = sum / float64(n)
			}
			rows = append(rows, row)
		}
		RenderTable(w, headers, rows)
		fmt.Fprintln(w)
		RenderBars(w, fmt.Sprintf("  average over models (%s):", unit), strategies, stratAvg, unit)

		if outDir != "" {
			values := make([][]float64, len(models))
			for mi, mo := range models {
				values[mi] = make([]float64, len(strategies))
				for si, st := range strategies {
					if rec, ok := byKey[ds+"/"+mo+"/"+st]; ok {
						values[mi][si] = value(rec)
					}
				}
			}
			chart := plot.BarChart{
				Title:  fmt.Sprintf("%s (%s)", title, ds),
				XLabel: "strategy",
				YLabel: unit,
				Groups: strategies,
				Series: models,
				Values: values,
			}
			svgName := strings.TrimSuffix(fileName, ".csv") + "_" + ds + ".svg"
			if err := plot.WriteFile(filepath.Join(outDir, svgName), chart.Render()); err != nil {
				return err
			}
		}
	}
	if outDir != "" {
		return WriteCSV(filepath.Join(outDir, fileName),
			[]string{"dataset", "model", "strategy", "value"}, csvRows)
	}
	return nil
}

func orderedDatasets(records []SweepRecord) []string {
	seen := make(map[string]bool)
	var out []string
	for _, rec := range records {
		if !seen[rec.Dataset] {
			seen[rec.Dataset] = true
			out = append(out, rec.Dataset)
		}
	}
	return out
}

// Fig2 renders discovery runtime per strategy per dataset (paper Figure 2).
func (r *Runner) Fig2(w io.Writer, outDir string, records []SweepRecord) error {
	return sweepFigure(w, outDir, "fig2_runtime.csv",
		"Figure 2: Runtime of the discovery algorithm (seconds).", "s",
		records, r.Cfg.Models, r.Cfg.Strategies,
		func(rec SweepRecord) float64 { return rec.Runtime.Seconds() })
}

// Fig4 renders MRR of the discovered facts (paper Figure 4).
func (r *Runner) Fig4(w io.Writer, outDir string, records []SweepRecord) error {
	return sweepFigure(w, outDir, "fig4_mrr.csv",
		"Figure 4: MRR of the discovery algorithm.", "MRR",
		records, r.Cfg.Models, r.Cfg.Strategies,
		func(rec SweepRecord) float64 { return rec.MRR })
}

// Fig6 renders discovery efficiency in facts/hour (paper Figure 6).
func (r *Runner) Fig6(w io.Writer, outDir string, records []SweepRecord) error {
	return sweepFigure(w, outDir, "fig6_efficiency.csv",
		"Figure 6: Efficiency of the discovery algorithm (facts/hour).", "facts/h",
		records, r.Cfg.Models, r.Cfg.Strategies,
		func(rec SweepRecord) float64 { return rec.FactsPerHour })
}

// ClusteringSummary is one dataset's row of Figure 3.
type ClusteringSummary struct {
	Dataset   string
	Mean      float64 // average local clustering coefficient (the red line)
	Nodes     int
	Histogram []int
	Edges     []float64
}

// Fig3 computes and renders the distribution of local clustering
// coefficients across the datasets (paper Figure 3).
func (r *Runner) Fig3(w io.Writer, outDir string) ([]ClusteringSummary, error) {
	const bins = 20
	var summaries []ClusteringSummary
	var csvRows [][]string
	fmt.Fprintln(w, "Figure 3: Distribution of local clustering coefficients per dataset.")
	for _, name := range DatasetNames() {
		ds, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		u := graphstats.BuildUndirected(ds.Train)
		coeffs := u.LocalClustering(nil)
		edges, counts := graphstats.Histogram(coeffs, bins)
		s := ClusteringSummary{
			Dataset:   name,
			Mean:      graphstats.Mean(coeffs),
			Nodes:     len(coeffs),
			Histogram: counts,
			Edges:     edges,
		}
		summaries = append(summaries, s)
		fmt.Fprintf(w, "\n(%s)  nodes=%d  average clustering coefficient=%.4f\n", name, s.Nodes, s.Mean)
		labels := make([]string, len(counts))
		values := make([]float64, len(counts))
		for i, c := range counts {
			labels[i] = fmt.Sprintf("[%.2f,%.2f)", edges[i], edges[i+1])
			values[i] = float64(c)
			csvRows = append(csvRows, []string{name,
				fmt.Sprintf("%g", edges[i]), fmt.Sprintf("%g", edges[i+1]), fmt.Sprintf("%d", c)})
		}
		RenderBars(w, "  histogram:", labels, values, "nodes")

		if outDir != "" {
			chart := plot.Histogram{
				Title:  fmt.Sprintf("Figure 3: clustering coefficients (%s)", name),
				XLabel: "local clustering coefficient",
				YLabel: "nodes",
				Edges:  edges,
				Counts: counts,
				Mean:   s.Mean,
			}
			path := filepath.Join(outDir, "fig3_clustering_"+name+".svg")
			if err := plot.WriteFile(path, chart.Render()); err != nil {
				return nil, err
			}
		}
	}
	if outDir != "" {
		if err := WriteCSV(filepath.Join(outDir, "fig3_clustering.csv"),
			[]string{"dataset", "bin_lo", "bin_hi", "count"}, csvRows); err != nil {
			return nil, err
		}
	}
	return summaries, nil
}

// NodeSeries carries Figure 5's per-node series for FB15K-237-sim.
type NodeSeries struct {
	Triangles   []int64
	Clustering  []float64
	Correlation float64 // Pearson correlation of the two series
}

// Fig5 computes the per-node triangle counts and clustering coefficients of
// FB15K-237-sim (paper Figure 5) and reports their (lack of) correlation,
// which is the figure's argument.
func (r *Runner) Fig5(w io.Writer, outDir string) (*NodeSeries, error) {
	ds, err := r.Dataset("fb15k237-sim")
	if err != nil {
		return nil, err
	}
	u := graphstats.BuildUndirected(ds.Train)
	tri := u.Triangles()
	coeffs := u.LocalClustering(tri)
	triF := make([]float64, len(tri))
	for i, t := range tri {
		triF[i] = float64(t)
	}
	series := &NodeSeries{
		Triangles:   tri,
		Clustering:  coeffs,
		Correlation: graphstats.PearsonCorrelation(triF, coeffs),
	}
	fmt.Fprintln(w, "Figure 5: Triangles vs clustering coefficient per node (fb15k237-sim).")
	fmt.Fprintf(w, "  nodes:                         %d\n", len(tri))
	fmt.Fprintf(w, "  mean triangles per node:       %.2f\n", graphstats.Mean(triF))
	fmt.Fprintf(w, "  mean clustering coefficient:   %.4f\n", graphstats.Mean(coeffs))
	fmt.Fprintf(w, "  Pearson correlation (T, c):    %.4f  (the paper argues this is weak)\n", series.Correlation)
	if outDir != "" {
		rows := make([][]string, len(tri))
		for i := range tri {
			rows[i] = []string{fmt.Sprintf("%d", i), fmt.Sprintf("%d", tri[i]), fmt.Sprintf("%g", coeffs[i])}
		}
		if err := WriteCSV(filepath.Join(outDir, "fig5_node_series.csv"),
			[]string{"node", "triangles", "clustering_coefficient"}, rows); err != nil {
			return nil, err
		}
		idx := make([]float64, len(tri))
		for i := range idx {
			idx[i] = float64(i)
		}
		triChart := plot.Scatter{
			Title:  "Figure 5a: local triangle count per node (fb15k237-sim)",
			XLabel: "node index", YLabel: "triangles",
			X: idx, Y: triF,
		}
		if err := plot.WriteFile(filepath.Join(outDir, "fig5_triangles.svg"), triChart.Render()); err != nil {
			return nil, err
		}
		ccChart := plot.Scatter{
			Title:  "Figure 5b: local clustering coefficient per node (fb15k237-sim)",
			XLabel: "node index", YLabel: "clustering coefficient",
			X: idx, Y: coeffs,
		}
		if err := plot.WriteFile(filepath.Join(outDir, "fig5_clustering.svg"), ccChart.Render()); err != nil {
			return nil, err
		}
	}
	return series, nil
}

// gridFigure renders one projection of a hyperparameter grid as a
// top_n × max_candidates matrix.
func gridFigure(w io.Writer, outDir, fileName, title string,
	records []GridRecord, value func(GridRecord) float64) error {

	byKey := make(map[[2]int]GridRecord)
	topNs := orderedInts(records, func(g GridRecord) int { return g.TopN })
	maxCands := orderedInts(records, func(g GridRecord) int { return g.MaxCandidates })
	for _, rec := range records {
		byKey[[2]int{rec.TopN, rec.MaxCandidates}] = rec
	}
	headers := []string{"top_n \\ max_cand"}
	for _, mc := range maxCands {
		headers = append(headers, fmt.Sprintf("%d", mc))
	}
	var rows [][]string
	var csvRows [][]string
	for _, tn := range topNs {
		row := []string{fmt.Sprintf("%d", tn)}
		for _, mc := range maxCands {
			rec, ok := byKey[[2]int{tn, mc}]
			if !ok {
				row = append(row, "-")
				continue
			}
			v := value(rec)
			row = append(row, fmt.Sprintf("%.4g", v))
			csvRows = append(csvRows, []string{rec.Strategy,
				fmt.Sprintf("%d", tn), fmt.Sprintf("%d", mc), fmt.Sprintf("%g", v)})
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(w, "%s\n\n", title)
	RenderTable(w, headers, rows)
	fmt.Fprintln(w)
	if outDir != "" {
		if err := WriteCSV(filepath.Join(outDir, fileName),
			[]string{"strategy", "top_n", "max_candidates", "value"}, csvRows); err != nil {
			return err
		}
		xs := make([]float64, len(maxCands))
		for i, mc := range maxCands {
			xs[i] = float64(mc)
		}
		seriesNames := make([]string, len(topNs))
		values := make([][]float64, len(topNs))
		for ti, tn := range topNs {
			seriesNames[ti] = fmt.Sprintf("top_n=%d", tn)
			values[ti] = make([]float64, len(maxCands))
			for mi, mc := range maxCands {
				if rec, ok := byKey[[2]int{tn, mc}]; ok {
					values[ti][mi] = value(rec)
				} else {
					values[ti][mi] = math.NaN()
				}
			}
		}
		chart := plot.LineChart{
			Title:  title,
			XLabel: "max_candidates",
			YLabel: "value",
			X:      xs,
			Series: seriesNames,
			Values: values,
		}
		return plot.WriteFile(filepath.Join(outDir, strings.TrimSuffix(fileName, ".csv")+".svg"), chart.Render())
	}
	return nil
}

func orderedInts(records []GridRecord, key func(GridRecord) int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, rec := range records {
		k := key(rec)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Fig7 renders runtime across the grid (paper Figure 7: runtime is flat in
// top_n and linear in max_candidates).
func (r *Runner) Fig7(w io.Writer, outDir string, records []GridRecord) error {
	return gridFigure(w, outDir, "fig7_grid_runtime.csv",
		"Figure 7: Grid runtime in seconds (fb15k237-sim, TransE, "+stratOf(records)+").",
		records, func(g GridRecord) float64 { return g.Runtime.Seconds() })
}

// Fig8 renders MRR across the grid (paper Figure 8: MRR falls with top_n,
// stays roughly stable with max_candidates).
func (r *Runner) Fig8(w io.Writer, outDir string, records []GridRecord) error {
	return gridFigure(w, outDir, "fig8_grid_mrr.csv",
		"Figure 8: Grid MRR (fb15k237-sim, TransE, "+stratOf(records)+").",
		records, func(g GridRecord) float64 { return g.MRR })
}

// Fig9And10 renders efficiency across the grid for one strategy; Figure 9
// reads the matrix along top_n and Figure 10 along max_candidates.
func (r *Runner) Fig9And10(w io.Writer, outDir string, records []GridRecord) error {
	return gridFigure(w, outDir, fmt.Sprintf("fig9_10_grid_efficiency_%s.csv", stratOf(records)),
		"Figures 9-10: Grid efficiency in facts/hour (fb15k237-sim, TransE, "+stratOf(records)+").",
		records, func(g GridRecord) float64 { return g.FactsPerHour })
}

func stratOf(records []GridRecord) string {
	if len(records) == 0 {
		return "?"
	}
	return records[0].Strategy
}

// SquaresRecord is one strategy's weight-computation cost in the exclusion
// experiment (X1). PerRelation is the measured cost of one Weights call
// (Algorithm 1 recomputes weights inside the per-relation loop);
// FullRunEstimate extrapolates to all relations of the dataset, mirroring
// how the paper extrapolated the aborted CLUSTERING SQUARES run.
type SquaresRecord struct {
	Strategy        string
	PerRelation     time.Duration
	FullRunEstimate time.Duration
}

// SquaresExclusion measures the per-relation weight-computation cost of
// every strategy, including CLUSTERING SQUARES, on fb15k237-sim —
// reproducing the reason the paper dropped the squares strategy (§4.3: a
// 54-hour run against 2-3 hours for the others).
func (r *Runner) SquaresExclusion(ctx context.Context, w io.Writer, outDir string) ([]SquaresRecord, error) {
	ds, err := r.Dataset("fb15k237-sim")
	if err != nil {
		return nil, err
	}
	relations := ds.Train.RelationIDs()
	if len(relations) == 0 {
		return nil, fmt.Errorf("harness: fb15k237-sim has no relations")
	}
	probe := relations[0]
	// Warm the graph's lazily built per-relation side tables so the first
	// strategy measured does not absorb that shared one-time cost.
	ds.Train.SideEntities(probe, kg.SubjectSide)
	var records []SquaresRecord
	var rows [][]string
	for _, name := range core.StrategyNames() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		strategy, err := core.StrategyByName(name)
		if err != nil {
			return nil, err
		}
		strategy.Bind(ds.Train)
		start := time.Now()
		strategy.Weights(probe)
		per := time.Since(start)
		rec := SquaresRecord{
			Strategy:        name,
			PerRelation:     per,
			FullRunEstimate: per * time.Duration(len(relations)),
		}
		records = append(records, rec)
		rows = append(rows, []string{name,
			fmt.Sprintf("%.6f", rec.PerRelation.Seconds()),
			fmt.Sprintf("%.3f", rec.FullRunEstimate.Seconds())})
	}
	fmt.Fprintf(w, "Exclusion experiment: per-relation weight-computation cost (fb15k237-sim, %d relations).\n\n", len(relations))
	RenderTable(w, []string{"strategy", "per relation (s)", "est. full run (s)"}, rows)
	var base, squares time.Duration
	for _, rec := range records {
		if rec.Strategy == "uniform_random" {
			base = rec.PerRelation
		}
		if rec.Strategy == "cluster_squares" {
			squares = rec.PerRelation
		}
	}
	if base > 0 {
		fmt.Fprintf(w, "\ncluster_squares is %.0fx more expensive than uniform_random — the paper's reason for excluding it.\n",
			squares.Seconds()/base.Seconds())
	}
	if outDir != "" {
		if err := WriteCSV(filepath.Join(outDir, "squares_exclusion.csv"),
			[]string{"strategy", "per_relation_seconds", "full_run_estimate_seconds"}, rows); err != nil {
			return nil, err
		}
	}
	return records, nil
}
