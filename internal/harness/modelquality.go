package harness

import (
	"context"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/eval"
)

// ModelQualityRecord is one dataset × model link-prediction result — the
// output of the paper's Model Training stage (§3.2), reported so readers
// can see the embedding quality that the discovery experiments build on
// (the paper's §6 notes typical KGE MRR/Hits@k barely exceed 50%, which
// bounds how much trust the discovery filter deserves).
type ModelQualityRecord struct {
	Dataset string
	Model   string
	MRR     float64
	Hits1   float64
	Hits3   float64
	Hits10  float64
}

// ModelQuality evaluates every configured model on every dataset's test
// split with the filtered protocol and renders the table.
func (r *Runner) ModelQuality(ctx context.Context, w io.Writer, outDir string) ([]ModelQualityRecord, error) {
	var records []ModelQualityRecord
	var rows [][]string
	for _, dsName := range DatasetNames() {
		ds, err := r.Dataset(dsName)
		if err != nil {
			return nil, err
		}
		filter := ds.All()
		for _, modelName := range r.Cfg.Models {
			m, err := r.Model(ctx, dsName, modelName)
			if err != nil {
				return nil, err
			}
			res := eval.Evaluate(eval.NewRanker(m, filter), ds.Test, eval.Options{MaxTriples: 2000})
			rec := ModelQualityRecord{
				Dataset: dsName,
				Model:   modelName,
				MRR:     res.MRR,
				Hits1:   res.Hits[1],
				Hits3:   res.Hits[3],
				Hits10:  res.Hits[10],
			}
			records = append(records, rec)
			rows = append(rows, []string{dsName, modelName,
				fmt.Sprintf("%.4f", rec.MRR), fmt.Sprintf("%.4f", rec.Hits1),
				fmt.Sprintf("%.4f", rec.Hits3), fmt.Sprintf("%.4f", rec.Hits10)})
			r.logf("quality %-13s %-9s MRR=%.4f hits@10=%.4f", dsName, modelName, rec.MRR, rec.Hits10)
		}
	}
	fmt.Fprintln(w, "Model quality (§3.2): filtered link-prediction metrics on the test splits.")
	fmt.Fprintln(w)
	RenderTable(w, []string{"dataset", "model", "MRR", "Hits@1", "Hits@3", "Hits@10"}, rows)
	if outDir != "" {
		if err := WriteCSV(filepath.Join(outDir, "model_quality.csv"),
			[]string{"dataset", "model", "mrr", "hits1", "hits3", "hits10"}, rows); err != nil {
			return nil, err
		}
	}
	return records, nil
}
