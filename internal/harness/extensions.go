package harness

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/train"
)

// This file hosts the two experiments that extend the paper's evaluation
// along its own §4.2.2 and §6 discussion:
//
//   X2 — popularity-bias audit: the paper *hypothesizes* popularity bias to
//        explain ENTITY FREQUENCY's outsized MRR with ConvE; the audit
//        measures the bias (mean Spearman correlation between object scores
//        and entity popularity) for every model on every dataset.
//   X3 — hidden-fact recovery: the paper notes no evaluation protocol
//        exists for fact discovery; this experiment applies the
//        hide-and-recover protocol from internal/eval to every strategy.

// BiasRecord is one cell of the popularity-bias audit.
type BiasRecord struct {
	Dataset      string
	Model        string
	MeanSpearman float64
}

// BiasAudit measures popularity bias for every configured model on every
// dataset and renders the table.
func (r *Runner) BiasAudit(ctx context.Context, w io.Writer, outDir string) ([]BiasRecord, error) {
	var records []BiasRecord
	var rows [][]string
	for _, dsName := range DatasetNames() {
		ds, err := r.Dataset(dsName)
		if err != nil {
			return nil, err
		}
		for _, modelName := range r.Cfg.Models {
			m, err := r.Model(ctx, dsName, modelName)
			if err != nil {
				return nil, err
			}
			rep := eval.PopularityBias(m, ds.Train, 60, r.Cfg.Seed)
			rec := BiasRecord{Dataset: dsName, Model: modelName, MeanSpearman: rep.MeanSpearman}
			records = append(records, rec)
			rows = append(rows, []string{dsName, modelName, fmt.Sprintf("%.4f", rec.MeanSpearman)})
			r.logf("bias %-13s %-9s spearman=%.4f", dsName, modelName, rec.MeanSpearman)
		}
	}
	fmt.Fprintln(w, "Popularity-bias audit (§4.2.2): mean Spearman correlation between object")
	fmt.Fprintln(w, "scores and entity popularity; higher = stronger popularity bias.")
	fmt.Fprintln(w)
	RenderTable(w, []string{"dataset", "model", "mean Spearman"}, rows)
	if outDir != "" {
		if err := WriteCSV(filepath.Join(outDir, "bias_audit.csv"),
			[]string{"dataset", "model", "mean_spearman"}, rows); err != nil {
			return nil, err
		}
	}
	return records, nil
}

// RecoveryRecord is one strategy's hidden-fact recovery result.
type RecoveryRecord struct {
	Strategy      string
	Facts         int
	Recall        float64
	KnownTrueRate float64
	Runtime       time.Duration
}

// RecoveryProtocol runs the hidden-fact recovery evaluation on
// fb15k237-sim: hide a fraction of the training facts, train a fresh model
// on the remainder, discover with every strategy (paper's five plus the
// exploration extensions), and score each against the hidden set.
func (r *Runner) RecoveryProtocol(ctx context.Context, w io.Writer, outDir string) ([]RecoveryRecord, error) {
	ds, err := r.Dataset("fb15k237-sim")
	if err != nil {
		return nil, err
	}
	visible, hidden := eval.HideFacts(ds.Train, 0.15, r.Cfg.Seed)
	r.logf("recovery: %d visible, %d hidden", visible.Len(), hidden.Len())

	model, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          r.Cfg.Dim,
		Seed:         r.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	holdout := &kg.Dataset{Name: "recovery", Train: visible,
		Valid: kg.NewGraphWithDicts(ds.Train.Entities, ds.Train.Relations),
		Test:  kg.NewGraphWithDicts(ds.Train.Entities, ds.Train.Relations)}
	if _, err := train.Run(ctx, model, holdout, train.Config{
		Epochs:     r.Cfg.Epochs,
		BatchSize:  256,
		NegSamples: 4,
		Seed:       r.Cfg.Seed,
	}); err != nil {
		return nil, err
	}

	strategies := append(append([]string{}, r.Cfg.Strategies...), core.ExtensionStrategyNames()...)
	var records []RecoveryRecord
	var rows [][]string
	for _, name := range strategies {
		strategy, err := core.ExtendedStrategyByName(name)
		if err != nil {
			return nil, err
		}
		res, err := core.DiscoverFacts(ctx, model, visible, strategy, core.Options{
			TopN:          r.Cfg.TopN,
			MaxCandidates: r.Cfg.MaxCandidates,
			Seed:          r.Cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		ranked := make([]eval.RankedFact, len(res.Facts))
		for i, f := range res.Facts {
			ranked[i] = eval.RankedFact{Triple: f.Triple, Rank: f.Rank}
		}
		rep := eval.EvaluateDiscovery(ranked, hidden)
		rec := RecoveryRecord{
			Strategy:      name,
			Facts:         len(res.Facts),
			Recall:        rep.Recall,
			KnownTrueRate: rep.KnownTrueRate,
			Runtime:       res.Stats.Total,
		}
		records = append(records, rec)
		rows = append(rows, []string{name, fmt.Sprintf("%d", rec.Facts),
			fmt.Sprintf("%.4f", rec.Recall), fmt.Sprintf("%.4f", rec.KnownTrueRate),
			fmt.Sprintf("%.3f", rec.Runtime.Seconds())})
		r.logf("recovery %-20s facts=%-6d recall=%.4f known-true=%.4f", name, rec.Facts, rec.Recall, rec.KnownTrueRate)
	}
	fmt.Fprintln(w, "Hidden-fact recovery protocol (§6): 15% of fb15k237-sim hidden before")
	fmt.Fprintln(w, "training; recall = fraction of hidden facts rediscovered.")
	fmt.Fprintln(w)
	RenderTable(w, []string{"strategy", "facts", "recall", "known-true rate", "runtime (s)"}, rows)
	if outDir != "" {
		if err := WriteCSV(filepath.Join(outDir, "recovery_protocol.csv"),
			[]string{"strategy", "facts", "recall", "known_true_rate", "runtime_seconds"}, rows); err != nil {
			return nil, err
		}
	}
	return records, nil
}
