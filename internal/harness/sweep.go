package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
)

// SweepRecord is one cell of the main comparative sweep (one dataset ×
// model × strategy discovery run). Figures 2, 4 and 6 are three projections
// of the same sweep: runtime, MRR and efficiency.
type SweepRecord struct {
	Dataset  string
	Model    string
	Strategy string

	Runtime      time.Duration
	WeightTime   time.Duration
	GenerateTime time.Duration
	RankTime     time.Duration

	Generated    int
	Facts        int
	MRR          float64
	FactsPerHour float64
}

// RunSweep executes the full dataset × model × strategy sweep with the
// configured TopN and MaxCandidates, returning one record per combination
// in deterministic order (datasets, then models, then strategies).
func (r *Runner) RunSweep(ctx context.Context) ([]SweepRecord, error) {
	var records []SweepRecord
	for _, dsName := range DatasetNames() {
		ds, err := r.Dataset(dsName)
		if err != nil {
			return nil, err
		}
		for _, modelName := range r.Cfg.Models {
			// Train (or fetch) the model up front so discovery timing below
			// excludes training.
			if _, err := r.Model(ctx, dsName, modelName); err != nil {
				return nil, err
			}
			for _, stratName := range r.Cfg.Strategies {
				rec, err := r.runDiscovery(ctx, dsName, modelName, stratName, ds.Train)
				if err != nil {
					return nil, err
				}
				records = append(records, rec)
				r.logf("sweep %-13s %-9s %-20s facts=%-5d MRR=%.4f  %8s  %10.0f facts/h",
					dsName, modelName, stratName, rec.Facts, rec.MRR,
					rec.Runtime.Round(time.Millisecond), rec.FactsPerHour)
			}
		}
	}
	return records, nil
}

// runDiscovery executes one discovery run and converts it to a SweepRecord.
func (r *Runner) runDiscovery(ctx context.Context, dsName, modelName, stratName string, g *kg.Graph) (SweepRecord, error) {
	model, err := r.Model(ctx, dsName, modelName)
	if err != nil {
		return SweepRecord{}, err
	}
	strategy, err := core.StrategyByName(stratName)
	if err != nil {
		return SweepRecord{}, err
	}
	res, err := core.DiscoverFacts(ctx, model, g, strategy, core.Options{
		TopN:          r.effectiveTopN(g.NumEntities()),
		MaxCandidates: r.Cfg.MaxCandidates,
		Seed:          r.Cfg.Seed,
	})
	if err != nil {
		return SweepRecord{}, fmt.Errorf("harness: discover %s/%s/%s: %w", dsName, modelName, stratName, err)
	}
	return SweepRecord{
		Dataset:      dsName,
		Model:        modelName,
		Strategy:     stratName,
		Runtime:      res.Stats.Total,
		WeightTime:   res.Stats.WeightTime,
		GenerateTime: res.Stats.GenerateTime,
		RankTime:     res.Stats.RankTime,
		Generated:    res.Stats.Generated,
		Facts:        len(res.Facts),
		MRR:          res.MRR(),
		FactsPerHour: res.Stats.FactsPerHour(len(res.Facts)),
	}, nil
}

// effectiveTopN resolves the rank threshold for a dataset with numEntities
// entities: TopNFraction-scaled when configured, the absolute TopN
// otherwise.
func (r *Runner) effectiveTopN(numEntities int) int {
	if r.Cfg.TopNFraction > 0 {
		tn := int(r.Cfg.TopNFraction * float64(numEntities))
		if tn < 1 {
			tn = 1
		}
		return tn
	}
	return r.Cfg.TopN
}

// GridRecord is one cell of the hyperparameter grid of §4.3 (Figures 7–10):
// FB15K-237(-sim) with TransE, sweeping top_n × max_candidates for one
// strategy.
type GridRecord struct {
	Strategy      string
	TopN          int
	MaxCandidates int

	Runtime      time.Duration
	Facts        int
	MRR          float64
	FactsPerHour float64
}

// GridTopNs and GridMaxCandidates are the grid-search values from §4.3.1.
func GridTopNs() []int         { return []int{100, 200, 300, 400, 500, 700} }
func GridMaxCandidates() []int { return []int{50, 100, 200, 300, 400, 500, 700} }

// RunGrid runs the hyperparameter grid for one strategy on FB15K-237-sim
// with TransE. Every (top_n, max_candidates) cell is a full, independently
// timed discovery run, exactly as the paper's grid search did.
func (r *Runner) RunGrid(ctx context.Context, stratName string, topNs, maxCands []int) ([]GridRecord, error) {
	const dsName = "fb15k237-sim"
	const modelName = "transe"
	ds, err := r.Dataset(dsName)
	if err != nil {
		return nil, err
	}
	model, err := r.Model(ctx, dsName, modelName)
	if err != nil {
		return nil, err
	}
	if topNs == nil {
		topNs = GridTopNs()
	}
	if maxCands == nil {
		maxCands = GridMaxCandidates()
	}
	var records []GridRecord
	for _, topN := range topNs {
		for _, mc := range maxCands {
			strategy, err := core.StrategyByName(stratName)
			if err != nil {
				return nil, err
			}
			res, err := core.DiscoverFacts(ctx, model, ds.Train, strategy, core.Options{
				TopN:          topN,
				MaxCandidates: mc,
				Seed:          r.Cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rec := GridRecord{
				Strategy:      stratName,
				TopN:          topN,
				MaxCandidates: mc,
				Runtime:       res.Stats.Total,
				Facts:         len(res.Facts),
				MRR:           res.MRR(),
				FactsPerHour:  res.Stats.FactsPerHour(len(res.Facts)),
			}
			records = append(records, rec)
			r.logf("grid %-20s top_n=%-4d max_cand=%-4d facts=%-5d MRR=%.4f %8s",
				stratName, topN, mc, rec.Facts, rec.MRR, rec.Runtime.Round(time.Millisecond))
		}
	}
	return records, nil
}
