package harness

// Multi-process test helpers: build the repo's commands once per test
// process, run them as real child processes with captured logs, and poll
// those logs (or arbitrary conditions) with deadlines. The fleet
// integration tests use these to boot a coordinator and several workers,
// kill them at scripted moments, and assert on what the survivors produce.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// RepoRoot walks up from the working directory to the enclosing go.mod —
// the repository root every `go build ./cmd/...` must run from. Test
// binaries execute in their package directory, so the walk is short.
func RepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

var (
	binDirOnce sync.Once
	binDir     string
	binDirErr  error

	buildMu sync.Mutex
	builds  = map[string]*buildResult{}
)

type buildResult struct {
	once sync.Once
	path string
	err  error
}

// TryBuildCmd compiles ./cmd/<name> (without the race detector — the test
// binary itself carries -race when enabled) into a per-process temp
// directory and returns the binary path. Repeated calls for the same name
// share one build.
func TryBuildCmd(name string) (string, error) {
	if strings.ContainsAny(name, "/\\.") {
		return "", fmt.Errorf("command name %q must be a bare cmd/ directory name", name)
	}
	binDirOnce.Do(func() {
		binDir, binDirErr = os.MkdirTemp("", "repro-bin-")
	})
	if binDirErr != nil {
		return "", binDirErr
	}
	buildMu.Lock()
	b, ok := builds[name]
	if !ok {
		b = &buildResult{}
		builds[name] = b
	}
	buildMu.Unlock()
	b.once.Do(func() {
		root, err := RepoRoot()
		if err != nil {
			b.err = err
			return
		}
		out := filepath.Join(binDir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = root
		if msg, err := cmd.CombinedOutput(); err != nil {
			b.err = fmt.Errorf("go build ./cmd/%s: %v\n%s", name, err, msg)
			return
		}
		b.path = out
	})
	return b.path, b.err
}

// BuildCmd is TryBuildCmd with a fatal failure.
func BuildCmd(t testing.TB, name string) string {
	t.Helper()
	path, err := TryBuildCmd(name)
	if err != nil {
		t.Fatalf("BuildCmd: %v", err)
	}
	return path
}

// BuildCmdOrSkip is TryBuildCmd with a graceful skip — for tests that are a
// bonus on top of the in-process coverage and should not fail the suite
// when child binaries cannot be built (e.g. a sandbox without a writable
// build cache).
func BuildCmdOrSkip(t testing.TB, name string) string {
	t.Helper()
	path, err := TryBuildCmd(name)
	if err != nil {
		t.Skipf("skipping: %v", err)
	}
	return path
}

// Proc is one child process with its combined output captured to a file.
type Proc struct {
	Name string
	cmd  *exec.Cmd
	log  string
	wait chan error // buffered; receives cmd.Wait() exactly once

	mu     sync.Mutex
	exited bool
	err    error
}

// StartProc launches bin with args, capturing stdout+stderr to logPath. The
// process is SIGKILLed at test cleanup if still running.
func StartProc(t testing.TB, logPath, bin string, args ...string) *Proc {
	t.Helper()
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		f.Close()
		t.Fatalf("StartProc %s: %v", bin, err)
	}
	f.Close() // the child holds its own descriptor
	p := &Proc{Name: filepath.Base(bin), cmd: cmd, log: logPath, wait: make(chan error, 1)}
	go func() { p.wait <- cmd.Wait() }()
	t.Cleanup(func() { p.Kill() })
	return p
}

// Log returns everything the process has written so far.
func (p *Proc) Log() string {
	b, err := os.ReadFile(p.log)
	if err != nil {
		return ""
	}
	return string(b)
}

// WaitLine polls the log until pattern matches, returning the first capture
// group (or the whole match if the pattern has none).
func (p *Proc) WaitLine(pattern string, timeout time.Duration) (string, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return "", err
	}
	deadline := time.Now().Add(timeout)
	for {
		if m := re.FindStringSubmatch(p.Log()); m != nil {
			if len(m) > 1 {
				return m[1], nil
			}
			return m[0], nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("%s: no %q within %s; log:\n%s", p.Name, pattern, timeout, p.Log())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// MustWaitLine is WaitLine with a fatal failure.
func (p *Proc) MustWaitLine(t testing.TB, pattern string, timeout time.Duration) string {
	t.Helper()
	m, err := p.WaitLine(pattern, timeout)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Signal sends sig to the process.
func (p *Proc) Signal(sig os.Signal) error { return p.cmd.Process.Signal(sig) }

// Kill SIGKILLs the process and reaps it. Safe to call repeatedly and after
// the process already exited.
func (p *Proc) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.exited {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	p.err = <-p.wait
	p.exited = true
}

// Wait blocks until the process exits on its own, returning its exit error
// (nil for status 0). It fails the wait — without killing — on timeout.
func (p *Proc) Wait(timeout time.Duration) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.exited {
		return p.err
	}
	select {
	case err := <-p.wait:
		p.exited = true
		p.err = err
		return err
	case <-time.After(timeout):
		return fmt.Errorf("%s: still running after %s; log:\n%s", p.Name, timeout, p.Log())
	}
}

// Exited reports whether the process has been reaped by Kill or Wait.
func (p *Proc) Exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// PollUntil polls cond every 20ms until it returns true or the timeout
// elapses; it reports whether cond ever held.
func PollUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}
