package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestBiasAudit(t *testing.T) {
	r := testRunner(t)
	var buf bytes.Buffer
	records, err := r.BiasAudit(context.Background(), &buf, "")
	if err != nil {
		t.Fatalf("BiasAudit: %v", err)
	}
	want := 4 * len(r.Cfg.Models)
	if len(records) != want {
		t.Fatalf("records = %d, want %d", len(records), want)
	}
	for _, rec := range records {
		if rec.MeanSpearman < -1 || rec.MeanSpearman > 1 {
			t.Errorf("%s/%s: Spearman %g outside [-1, 1]", rec.Dataset, rec.Model, rec.MeanSpearman)
		}
	}
	if !strings.Contains(buf.String(), "Spearman") {
		t.Error("bias output missing header")
	}
}

func TestModelQuality(t *testing.T) {
	r := testRunner(t)
	var buf bytes.Buffer
	records, err := r.ModelQuality(context.Background(), &buf, "")
	if err != nil {
		t.Fatalf("ModelQuality: %v", err)
	}
	if len(records) != 4*len(r.Cfg.Models) {
		t.Fatalf("records = %d, want %d", len(records), 4*len(r.Cfg.Models))
	}
	for _, rec := range records {
		if rec.MRR < 0 || rec.MRR > 1 || rec.Hits10 < rec.Hits1 {
			t.Errorf("%s/%s: implausible metrics %+v", rec.Dataset, rec.Model, rec)
		}
	}
	if !strings.Contains(buf.String(), "Hits@10") {
		t.Error("quality output missing header")
	}
}

func TestRecoveryProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	r := testRunner(t)
	var buf bytes.Buffer
	records, err := r.RecoveryProtocol(context.Background(), &buf, t.TempDir())
	if err != nil {
		t.Fatalf("RecoveryProtocol: %v", err)
	}
	// Paper's strategies (from the runner config) plus the two extensions.
	want := len(r.Cfg.Strategies) + 2
	if len(records) != want {
		t.Fatalf("records = %d, want %d", len(records), want)
	}
	for _, rec := range records {
		if rec.Recall < 0 || rec.Recall > 1 {
			t.Errorf("%s: recall %g outside [0, 1]", rec.Strategy, rec.Recall)
		}
		if rec.KnownTrueRate < 0 || rec.KnownTrueRate > 1 {
			t.Errorf("%s: known-true rate %g outside [0, 1]", rec.Strategy, rec.KnownTrueRate)
		}
	}
	if !strings.Contains(buf.String(), "recovery") {
		t.Error("recovery output missing header")
	}
}
