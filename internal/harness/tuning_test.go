package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestGridSearchFindsBest(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	results, best, err := GridSearch(context.Background(), "distmult", ds, TuneSpace{
		Dims:          []int{8, 16},
		LearningRates: []float64{0.05},
	}, 5, 1, &log)
	if err != nil {
		t.Fatalf("GridSearch: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if best == nil {
		t.Fatal("no best model returned")
	}
	// The best model's validation MRR equals the max across grid points.
	maxMRR := -1.0
	for _, r := range results {
		if r.ValidMRR > maxMRR {
			maxMRR = r.ValidMRR
		}
		if r.TrainTime <= 0 {
			t.Error("grid point missing timing")
		}
	}
	if maxMRR < 0 {
		t.Error("no valid MRR measured")
	}
	if !strings.Contains(log.String(), "tune") {
		t.Error("progress log empty")
	}
}

func TestGridSearchDefaultsToSinglePoint(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	results, best, err := GridSearch(context.Background(), "transe", ds, TuneSpace{}, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("zero TuneSpace produced %d points, want 1", len(results))
	}
	if best == nil {
		t.Fatal("no model")
	}
}

func TestGridSearchErrors(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := GridSearch(context.Background(), "bogus", ds, TuneSpace{}, 2, 1, nil); err == nil {
		t.Error("accepted unknown model")
	}
	if _, _, err := GridSearch(context.Background(), "transe", ds, TuneSpace{Losses: []string{"bogus"}}, 2, 1, nil); err == nil {
		t.Error("accepted unknown loss")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := GridSearch(ctx, "transe", ds, TuneSpace{}, 2, 1, nil); err == nil {
		t.Error("ignored cancelled context")
	}
}

func TestTuneResultDescribe(t *testing.T) {
	r := TuneResult{Dim: 8, LearningRate: 0.1, NegSamples: 2, L2: 0.01}
	s := r.Describe()
	if !strings.Contains(s, "dim=8") || !strings.Contains(s, "loss=default") {
		t.Errorf("Describe = %q", s)
	}
}
