package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/train"
)

// This file implements the "Model Training" stage of the paper's
// experimental workflow (§3.2): "we conduct hyperparameter tuning on all
// possible combinations of datasets and embedding algorithms to obtain the
// optimal embedding models … for instance through grid search". The paper
// leans on LibKGE's grid-search syntax; this is the equivalent here.

// TuneSpace is the hyperparameter grid. Nil slices fall back to a single
// sensible default, so a zero TuneSpace trains exactly one configuration.
type TuneSpace struct {
	Dims          []int
	LearningRates []float64
	NegSamples    []int
	Losses        []string // train.LossByName names; empty string = model default
	L2s           []float64
}

func (s *TuneSpace) setDefaults() {
	if len(s.Dims) == 0 {
		s.Dims = []int{32}
	}
	if len(s.LearningRates) == 0 {
		s.LearningRates = []float64{0.05}
	}
	if len(s.NegSamples) == 0 {
		s.NegSamples = []int{4}
	}
	if len(s.Losses) == 0 {
		s.Losses = []string{""}
	}
	if len(s.L2s) == 0 {
		s.L2s = []float64{0}
	}
}

// TuneResult records one grid point.
type TuneResult struct {
	Dim          int
	LearningRate float64
	NegSamples   int
	Loss         string
	L2           float64
	ValidMRR     float64
	TrainTime    time.Duration
}

// Describe renders the configuration compactly.
func (t TuneResult) Describe() string {
	loss := t.Loss
	if loss == "" {
		loss = "default"
	}
	return fmt.Sprintf("dim=%d lr=%g negs=%d loss=%s l2=%g", t.Dim, t.LearningRate, t.NegSamples, loss, t.L2)
}

// GridSearch trains modelName on ds for every combination in space and
// returns all results plus the best model (by validation MRR). epochs
// bounds each training run; validation MRR is measured on at most 300
// triples for speed, like LibKGE's cheap validation metric.
func GridSearch(ctx context.Context, modelName string, ds *kg.Dataset, space TuneSpace, epochs int, seed int64, log io.Writer) ([]TuneResult, kge.Trainable, error) {
	space.setDefaults()
	if epochs <= 0 {
		epochs = 20
	}
	filter := ds.All()

	var results []TuneResult
	var best kge.Trainable
	bestMRR := -1.0

	for _, dim := range space.Dims {
		for _, lr := range space.LearningRates {
			for _, negs := range space.NegSamples {
				for _, lossName := range space.Losses {
					for _, l2 := range space.L2s {
						if err := ctx.Err(); err != nil {
							return nil, nil, err
						}
						var loss train.Loss
						if lossName != "" {
							var err error
							loss, err = train.LossByName(lossName)
							if err != nil {
								return nil, nil, err
							}
						}
						m, err := kge.New(modelName, kge.Config{
							NumEntities:  ds.Train.Entities.Len(),
							NumRelations: ds.Train.Relations.Len(),
							Dim:          dim,
							Seed:         seed,
						})
						if err != nil {
							return nil, nil, err
						}
						start := time.Now()
						if _, err := train.Run(ctx, m, ds, train.Config{
							Epochs:       epochs,
							BatchSize:    256,
							NegSamples:   negs,
							LearningRate: float32(lr),
							Loss:         loss,
							L2:           float32(l2),
							Seed:         seed,
						}); err != nil {
							return nil, nil, err
						}
						res := eval.Evaluate(eval.NewRanker(m, filter), ds.Valid, eval.Options{MaxTriples: 300})
						tr := TuneResult{
							Dim:          dim,
							LearningRate: lr,
							NegSamples:   negs,
							Loss:         lossName,
							L2:           l2,
							ValidMRR:     res.MRR,
							TrainTime:    time.Since(start),
						}
						results = append(results, tr)
						if log != nil {
							fmt.Fprintf(log, "tune %-45s valid MRR %.4f (%s)\n",
								tr.Describe(), tr.ValidMRR, tr.TrainTime.Round(time.Millisecond))
						}
						if res.MRR > bestMRR {
							bestMRR = res.MRR
							best = m
						}
					}
				}
			}
		}
	}
	return results, best, nil
}
