package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testRunner builds a Runner at miniature scale so harness tests stay fast.
func testRunner(t *testing.T) *Runner {
	t.Helper()
	return NewRunner(Config{
		Scale:         300,
		Models:        []string{"distmult"},
		Strategies:    []string{"uniform_random", "entity_frequency"},
		Dim:           8,
		Epochs:        3,
		TopN:          50,
		MaxCandidates: 50,
		Seed:          1,
	})
}

func TestTable1OrderingsMatchPaper(t *testing.T) {
	r := testRunner(t)
	var buf bytes.Buffer
	metas, err := r.Table1(&buf, "")
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(metas) != 4 {
		t.Fatalf("rows = %d, want 4", len(metas))
	}
	byName := map[string]int{}
	for i, m := range metas {
		byName[m.Name] = i
		if m.Train == 0 || m.Entities == 0 || m.Relations == 0 {
			t.Errorf("degenerate metadata: %+v", m)
		}
	}
	fb := metas[byName["fb15k237-sim"]]
	wn := metas[byName["wn18rr-sim"]]
	yago := metas[byName["yago310-sim"]]
	codex := metas[byName["codexl-sim"]]
	// Relation counts are the paper's exactly.
	if fb.Relations != 237 || wn.Relations != 11 || yago.Relations != 37 || codex.Relations != 69 {
		t.Errorf("relation counts: fb=%d wn=%d yago=%d codex=%d", fb.Relations, wn.Relations, yago.Relations, codex.Relations)
	}
	// Largest training split: YAGO.
	if !(yago.Train > codex.Train && codex.Train > fb.Train) {
		t.Errorf("train size ordering broken: yago=%d codex=%d fb=%d", yago.Train, codex.Train, fb.Train)
	}
	if !strings.Contains(buf.String(), "fb15k237-sim") {
		t.Error("table output missing dataset name")
	}
}

func TestDatasetCached(t *testing.T) {
	r := testRunner(t)
	a, err := r.Dataset("wn18rr-sim")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Dataset("wn18rr-sim")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Dataset not cached")
	}
	if _, err := r.Dataset("nope"); err == nil {
		t.Error("accepted unknown dataset")
	}
}

func TestModelTrainingAndDiskCache(t *testing.T) {
	dir := t.TempDir()
	cfg := testRunner(t).Cfg
	cfg.CacheDir = dir
	r := NewRunner(cfg)
	ctx := context.Background()
	m1, err := r.Model(ctx, "wn18rr-sim", "distmult")
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries = %d (%v), want 1", len(entries), err)
	}
	// A fresh runner must load from disk and produce identical scores.
	r2 := NewRunner(cfg)
	m2, err := r2.Model(ctx, "wn18rr-sim", "distmult")
	if err != nil {
		t.Fatalf("Model (cached): %v", err)
	}
	ds, _ := r2.Dataset("wn18rr-sim")
	probe := ds.Train.Triples()[0]
	if m1.Score(probe) != m2.Score(probe) {
		t.Error("disk-cached model scores differ")
	}
}

func TestFig3ClusteringOrdering(t *testing.T) {
	r := testRunner(t)
	var buf bytes.Buffer
	sums, err := r.Fig3(&buf, "")
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	means := map[string]float64{}
	for _, s := range sums {
		means[s.Dataset] = s.Mean
		if s.Nodes == 0 {
			t.Errorf("%s: no nodes", s.Dataset)
		}
	}
	// Figure 3's headline: WN18RR has the lowest clustering; FB the highest.
	if !(means["fb15k237-sim"] > means["wn18rr-sim"]) {
		t.Errorf("fb mean %.4f should exceed wn mean %.4f", means["fb15k237-sim"], means["wn18rr-sim"])
	}
	if !(means["yago310-sim"] > means["wn18rr-sim"]) {
		t.Errorf("yago mean %.4f should exceed wn mean %.4f", means["yago310-sim"], means["wn18rr-sim"])
	}
}

func TestFig5SeriesAndWeakCorrelation(t *testing.T) {
	r := testRunner(t)
	var buf bytes.Buffer
	series, err := r.Fig5(&buf, "")
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(series.Triangles) != len(series.Clustering) || len(series.Triangles) == 0 {
		t.Fatalf("series lengths: %d vs %d", len(series.Triangles), len(series.Clustering))
	}
	// Figure 5's argument: the two node statistics are weakly correlated.
	if series.Correlation > 0.6 {
		t.Errorf("triangles and clustering coefficient strongly correlated (%.3f); the paper's argument needs weak correlation", series.Correlation)
	}
}

func TestSweepAndFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	r := testRunner(t)
	records, err := r.RunSweep(context.Background())
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	want := 4 * len(r.Cfg.Models) * len(r.Cfg.Strategies)
	if len(records) != want {
		t.Fatalf("records = %d, want %d", len(records), want)
	}
	for _, rec := range records {
		if rec.Runtime <= 0 {
			t.Errorf("%s/%s/%s: no runtime", rec.Dataset, rec.Model, rec.Strategy)
		}
		if rec.MRR < 0 || rec.MRR > 1 {
			t.Errorf("%s/%s/%s: MRR %g out of range", rec.Dataset, rec.Model, rec.Strategy, rec.MRR)
		}
		if rec.Facts > rec.Generated {
			t.Errorf("%s/%s/%s: more facts (%d) than candidates (%d)", rec.Dataset, rec.Model, rec.Strategy, rec.Facts, rec.Generated)
		}
	}

	outDir := t.TempDir()
	var buf bytes.Buffer
	if err := r.Fig2(&buf, outDir, records); err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if err := r.Fig4(&buf, outDir, records); err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if err := r.Fig6(&buf, outDir, records); err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	for _, f := range []string{"fig2_runtime.csv", "fig4_mrr.csv", "fig6_efficiency.csv",
		"fig2_runtime_fb15k237-sim.svg", "fig4_mrr_wn18rr-sim.svg", "fig6_efficiency_codexl-sim.svg"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
	if !strings.Contains(buf.String(), "Figure 2") || !strings.Contains(buf.String(), "facts/h") {
		t.Error("figure output incomplete")
	}
}

func TestRunGridShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration grid")
	}
	r := testRunner(t)
	records, err := r.RunGrid(context.Background(), "uniform_random", []int{10, 30}, []int{20, 40})
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("grid cells = %d, want 4", len(records))
	}
	var buf bytes.Buffer
	outDir := t.TempDir()
	if err := r.Fig7(&buf, outDir, records); err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if err := r.Fig8(&buf, outDir, records); err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if err := r.Fig9And10(&buf, outDir, records); err != nil {
		t.Fatalf("Fig9And10: %v", err)
	}
	if !strings.Contains(buf.String(), "top_n") {
		t.Error("grid output missing axis header")
	}
}

func TestSquaresExclusionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration squares")
	}
	r := testRunner(t)
	var buf bytes.Buffer
	records, err := r.SquaresExclusion(context.Background(), &buf, "")
	if err != nil {
		t.Fatalf("SquaresExclusion: %v", err)
	}
	byName := map[string]SquaresRecord{}
	for _, rec := range records {
		byName[rec.Strategy] = rec
	}
	squares := byName["cluster_squares"]
	uniform := byName["uniform_random"]
	if squares.PerRelation <= uniform.PerRelation {
		t.Errorf("squares (%v) not slower than uniform (%v)", squares.PerRelation, uniform.PerRelation)
	}
	if squares.FullRunEstimate < squares.PerRelation {
		t.Error("extrapolated estimate smaller than one relation's cost")
	}
}

func TestRenderTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	RenderTable(&buf, []string{"a", "bbbb"}, [][]string{{"xxxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("separator line malformed: %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "out.csv")
	if err := WriteCSV(path, []string{"h1", "h2"}, [][]string{{"a", "b"}}); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "h1,h2\na,b\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestRenderBars(t *testing.T) {
	var buf bytes.Buffer
	RenderBars(&buf, "title:", []string{"x", "y"}, []float64{1, 2}, "u")
	out := buf.String()
	if !strings.Contains(out, "title:") || !strings.Contains(out, "█") {
		t.Errorf("bars output: %q", out)
	}
	// Zero values must not crash or divide by zero.
	buf.Reset()
	RenderBars(&buf, "t", []string{"z"}, []float64{0}, "u")
}

func TestConfigDefaults(t *testing.T) {
	r := NewRunner(Config{})
	c := r.Cfg
	if c.Scale != 10 || c.Dim != 32 || c.Epochs != 25 || c.TopN != 500 || c.MaxCandidates != 500 || c.Seed != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.Models) != 5 || len(c.Strategies) != 5 {
		t.Errorf("default model/strategy lists wrong: %v / %v", c.Models, c.Strategies)
	}
}

func TestGridValueListsMatchPaper(t *testing.T) {
	// §4.3.1: max_candidates ∈ {50,100,200,300,400,500,700},
	// top_n ∈ {100,200,300,400,500,700}.
	tn := GridTopNs()
	mc := GridMaxCandidates()
	if len(tn) != 6 || tn[0] != 100 || tn[len(tn)-1] != 700 {
		t.Errorf("GridTopNs = %v", tn)
	}
	if len(mc) != 7 || mc[0] != 50 || mc[len(mc)-1] != 700 {
		t.Errorf("GridMaxCandidates = %v", mc)
	}
}

func TestEffectiveTopN(t *testing.T) {
	cfg := testRunner(t).Cfg
	cfg.TopN = 500
	r := NewRunner(cfg)
	if got := r.effectiveTopN(1000); got != 500 {
		t.Errorf("absolute top_n = %d, want 500", got)
	}
	cfg.TopNFraction = 0.05
	r = NewRunner(cfg)
	if got := r.effectiveTopN(1000); got != 50 {
		t.Errorf("fractional top_n = %d, want 50", got)
	}
	if got := r.effectiveTopN(3); got != 1 {
		t.Errorf("floor top_n = %d, want 1", got)
	}
}

func TestRunnerLogging(t *testing.T) {
	var log bytes.Buffer
	cfg := testRunner(t).Cfg
	cfg.Log = &log
	r := NewRunner(cfg)
	if _, err := r.Dataset("wn18rr-sim"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "wn18rr-sim") {
		t.Error("progress log empty with Log configured")
	}
}

func TestPaperListsAreConsistent(t *testing.T) {
	if len(PaperModels()) != 5 {
		t.Errorf("paper models = %v, want 5 entries", PaperModels())
	}
	if len(PaperStrategies()) != 5 {
		t.Errorf("paper strategies = %v, want 5 entries", PaperStrategies())
	}
	if len(DatasetNames()) != 4 {
		t.Errorf("datasets = %v, want 4 entries", DatasetNames())
	}
}
