// Package sample provides weighted discrete sampling primitives. The fact
// discovery algorithm draws subject and object candidates with probabilities
// proportional to strategy-specific weights (entity frequency, degree,
// triangle counts, …); this package supplies two interchangeable samplers —
// Vose's alias method (O(1) per draw after O(n) setup) and inverse-CDF
// binary search (O(log n) per draw) — plus a helper that draws a set of
// distinct values, mirroring NumPy's choice-then-unique behaviour in
// AmpliGraph's discover_facts.
package sample

import (
	"fmt"
	"math/rand"
	"sort"
)

// Weighted draws indices in [0, n) with fixed relative weights.
type Weighted interface {
	// Draw returns one index distributed proportionally to the weights.
	Draw(rng *rand.Rand) int
	// Len returns the number of categories n.
	Len() int
}

// NewAlias builds a Vose alias sampler over weights. Weights must be
// non-negative with a positive sum.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sample: empty weight vector")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sample: negative weight %g at index %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("sample: weights sum to zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through floating-point round-off.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Alias is Vose's alias-method sampler: constant-time draws after linear
// setup. It is the default sampler for the discovery strategies.
type Alias struct {
	prob  []float64
	alias []int
}

// Draw implements Weighted.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len implements Weighted.
func (a *Alias) Len() int { return len(a.prob) }

// NewCDF builds an inverse-CDF sampler (binary search over the cumulative
// weights). Kept as the ablation baseline against Alias.
func NewCDF(weights []float64) (*CDF, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sample: empty weight vector")
	}
	c := &CDF{cum: make([]float64, n)}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sample: negative weight %g at index %d", w, i)
		}
		sum += w
		c.cum[i] = sum
	}
	if sum <= 0 {
		return nil, fmt.Errorf("sample: weights sum to zero")
	}
	c.total = sum
	return c, nil
}

// CDF samples by binary search over cumulative weights.
type CDF struct {
	cum   []float64
	total float64
}

// Draw implements Weighted.
func (c *CDF) Draw(rng *rand.Rand) int {
	u := rng.Float64() * c.total
	return sort.SearchFloat64s(c.cum, u)
}

// Len implements Weighted.
func (c *CDF) Len() int { return len(c.cum) }

// DistinctDraws draws from w until it has collected k distinct indices or has
// made maxAttempts draws, whichever comes first, and returns the distinct
// indices in draw order. This mirrors AmpliGraph's sampling step, where
// duplicate draws collapse in the subsequent mesh-grid construction. If
// k >= w.Len() the result is capped at w.Len() distinct values (given enough
// attempts). maxAttempts <= 0 means 50·k attempts.
func DistinctDraws(w Weighted, rng *rand.Rand, k, maxAttempts int) []int {
	if k <= 0 {
		return nil
	}
	if maxAttempts <= 0 {
		maxAttempts = 50 * k
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for attempt := 0; attempt < maxAttempts && len(out) < k; attempt++ {
		i := w.Draw(rng)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, i)
	}
	return out
}

// Uniform returns a Weighted assigning equal probability to n categories.
func Uniform(n int) (Weighted, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sample: Uniform needs n > 0, got %d", n)
	}
	return uniform(n), nil
}

type uniform int

func (u uniform) Draw(rng *rand.Rand) int { return rng.Intn(int(u)) }
func (u uniform) Len() int                { return int(u) }
