package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chiSquare draws n samples and returns the chi-square statistic against
// the expected distribution.
func chiSquare(t *testing.T, w Weighted, weights []float64, n int, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		idx := w.Draw(rng)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("Draw returned out-of-range index %d", idx)
		}
		counts[idx]++
	}
	var total float64
	for _, x := range weights {
		total += x
	}
	var chi2 float64
	for i, c := range counts {
		expected := weights[i] / total * float64(n)
		if expected == 0 {
			if c != 0 {
				t.Fatalf("sampled index %d with zero weight", i)
			}
			continue
		}
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

func testDistribution(t *testing.T, build func([]float64) (Weighted, error)) {
	t.Helper()
	weights := []float64{1, 2, 3, 4, 0, 10}
	w, err := build(weights)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// 5 non-zero categories → 4 dof; chi2 < 30 is an extremely loose bound
	// (p ≈ 5e-6) that still catches broken samplers.
	if chi2 := chiSquare(t, w, weights, 100000, 7); chi2 > 30 {
		t.Errorf("chi-square = %.1f, distribution looks wrong", chi2)
	}
	if w.Len() != len(weights) {
		t.Errorf("Len = %d, want %d", w.Len(), len(weights))
	}
}

func TestAliasDistribution(t *testing.T) {
	testDistribution(t, func(ws []float64) (Weighted, error) { return NewAlias(ws) })
}

func TestCDFDistribution(t *testing.T) {
	testDistribution(t, func(ws []float64) (Weighted, error) { return NewCDF(ws) })
}

func TestUniformDistribution(t *testing.T) {
	u, err := Uniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 := chiSquare(t, u, []float64{1, 1, 1, 1}, 40000, 3); chi2 > 25 {
		t.Errorf("chi-square = %.1f for uniform sampler", chi2)
	}
}

func TestSamplerErrors(t *testing.T) {
	for _, build := range []func([]float64) (Weighted, error){
		func(ws []float64) (Weighted, error) { return NewAlias(ws) },
		func(ws []float64) (Weighted, error) { return NewCDF(ws) },
	} {
		if _, err := build(nil); err == nil {
			t.Error("accepted empty weights")
		}
		if _, err := build([]float64{1, -1}); err == nil {
			t.Error("accepted negative weight")
		}
		if _, err := build([]float64{0, 0}); err == nil {
			t.Error("accepted all-zero weights")
		}
	}
	if _, err := Uniform(0); err == nil {
		t.Error("Uniform accepted n = 0")
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if a.Draw(rng) != 0 {
			t.Fatal("single-category sampler returned nonzero index")
		}
	}
}

// Property: Alias and CDF agree in distribution (compare empirical
// frequencies on random weight vectors).
func TestPropertyAliasMatchesCDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 10
		}
		weights[rng.Intn(n)] += 1 // ensure positive sum
		a, err1 := NewAlias(weights)
		c, err2 := NewCDF(weights)
		if err1 != nil || err2 != nil {
			return false
		}
		const draws = 20000
		ca := make([]int, n)
		cc := make([]int, n)
		rngA := rand.New(rand.NewSource(seed + 1))
		rngC := rand.New(rand.NewSource(seed + 2))
		for i := 0; i < draws; i++ {
			ca[a.Draw(rngA)]++
			cc[c.Draw(rngC)]++
		}
		for i := 0; i < n; i++ {
			if math.Abs(float64(ca[i]-cc[i]))/draws > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDistinctDrawsNoDuplicates(t *testing.T) {
	a, err := NewAlias([]float64{1, 1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	got := DistinctDraws(a, rng, 5, 0)
	if len(got) != 5 {
		t.Fatalf("got %d draws, want 5", len(got))
	}
	seen := make(map[int]bool)
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestDistinctDrawsCapsAtPopulation(t *testing.T) {
	a, err := NewAlias([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	got := DistinctDraws(a, rng, 10, 0)
	if len(got) != 3 {
		t.Fatalf("got %d distinct draws from 3 categories, want 3", len(got))
	}
}

func TestDistinctDrawsZeroK(t *testing.T) {
	a, _ := NewAlias([]float64{1})
	if got := DistinctDraws(a, rand.New(rand.NewSource(1)), 0, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestDistinctDrawsRespectsMaxAttempts(t *testing.T) {
	// Weight mass concentrated on one index: with few attempts we likely
	// can't collect many distinct values — but the call must terminate and
	// return at most k values.
	a, err := NewAlias([]float64{1000, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	got := DistinctDraws(a, rng, 4, 3)
	if len(got) > 3 {
		t.Fatalf("more distinct values (%d) than attempts (3)", len(got))
	}
}

// Property: zero-weight categories are never drawn by either sampler.
func TestPropertyZeroWeightNeverDrawn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		weights := []float64{0, 3, 0, 5, 0}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		c, err := NewCDF(weights)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			if idx := a.Draw(rng); weights[idx] == 0 {
				return false
			}
			if idx := c.Draw(rng); weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
