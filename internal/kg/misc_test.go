package kg

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTripleString(t *testing.T) {
	if got := (Triple{S: 1, R: 2, O: 3}).String(); got != "(1, 2, 3)" {
		t.Errorf("String = %q", got)
	}
}

func TestSideString(t *testing.T) {
	if SubjectSide.String() != "subject" || ObjectSide.String() != "object" {
		t.Error("side names wrong")
	}
	if got := Side(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown side String = %q", got)
	}
}

func TestFormatTriple(t *testing.T) {
	g := NewGraph()
	tr := g.AddNamed("zeus", "father_of", "ares")
	if got := g.FormatTriple(tr); got != "(zeus, father_of, ares)" {
		t.Errorf("FormatTriple = %q", got)
	}
}

func TestGraphVocabularySizes(t *testing.T) {
	g := NewGraph()
	g.AddNamed("a", "r", "b")
	if g.NumEntities() != 2 || g.NumRelations() != 1 {
		t.Errorf("NumEntities/NumRelations = %d/%d", g.NumEntities(), g.NumRelations())
	}
}

func TestDictNames(t *testing.T) {
	d := NewDict()
	d.Intern("zebra")
	d.Intern("apple")
	names := d.Names()
	if len(names) != 2 || names[0] != "zebra" || names[1] != "apple" {
		t.Errorf("Names = %v (insertion order expected)", names)
	}
	sorted := d.SortedNames()
	if sorted[0] != "apple" || sorted[1] != "zebra" {
		t.Errorf("SortedNames = %v", sorted)
	}
	// Names returns a copy: mutating it must not corrupt the dict.
	names[0] = "corrupted"
	if d.Name(0) != "zebra" {
		t.Error("Names leaked internal storage")
	}
}

func TestMetadataString(t *testing.T) {
	m := Metadata{Name: "x", Train: 1, Validation: 2, Test: 3, Entities: 4, Relations: 5}
	s := m.String()
	for _, want := range []string{"x", "train=1", "valid=2", "test=3", "entities=4", "relations=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Metadata.String() = %q missing %q", s, want)
		}
	}
}

func TestLoadTSVFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.tsv")
	if err := os.WriteFile(path, []byte("a\tr\tb\nb\tr\tc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadTSVFile(path)
	if err != nil {
		t.Fatalf("LoadTSVFile: %v", err)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
	if _, err := LoadTSVFile(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Error("accepted missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.tsv")
	if err := os.WriteFile(bad, []byte("only-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTSVFile(bad); err == nil {
		t.Error("accepted malformed file")
	}
}

func TestSaveDatasetFailsOnUnwritablePath(t *testing.T) {
	ds := &Dataset{Name: "x", Train: NewGraph(), Valid: NewGraph(), Test: NewGraph()}
	// A file where a directory is expected.
	path := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveDataset(ds, filepath.Join(path, "sub")); err == nil {
		t.Error("accepted unwritable directory")
	}
}
