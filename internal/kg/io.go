package kg

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReadTSV parses triples in the ubiquitous "subject \t relation \t object"
// benchmark format into g, interning names in g's dictionaries. Blank lines
// and lines starting with '#' are skipped. It returns the number of triples
// added (duplicates are counted as read but not added twice).
func ReadTSV(g *Graph, r io.Reader) (added int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			return added, fmt.Errorf("kg: line %d: expected 3 tab-separated fields, got %d", line, len(parts))
		}
		g.AddNamed(parts[0], parts[1], parts[2])
		added++
	}
	return added, sc.Err()
}

// WriteTSV writes the graph's triples in (S, R, O)-sorted order, one per
// line, using dictionary names.
func WriteTSV(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	ts := make([]Triple, g.Len())
	copy(ts, g.Triples())
	SortTriples(ts)
	for _, t := range ts {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n",
			g.Entities.Name(int32(t.S)), g.Relations.Name(int32(t.R)), g.Entities.Name(int32(t.O))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTSVFile reads a TSV file into a fresh graph.
func LoadTSVFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g := NewGraph()
	if _, err := ReadTSV(g, f); err != nil {
		return nil, fmt.Errorf("kg: %s: %w", path, err)
	}
	return g, nil
}

// SaveDataset writes train.txt, valid.txt and test.txt under dir, creating
// the directory if needed.
func SaveDataset(d *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, part := range []struct {
		name string
		g    *Graph
	}{{"train.txt", d.Train}, {"valid.txt", d.Valid}, {"test.txt", d.Test}} {
		f, err := os.Create(filepath.Join(dir, part.name))
		if err != nil {
			return err
		}
		if err := WriteTSV(part.g, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDataset reads train.txt, valid.txt and test.txt from dir into a
// Dataset whose splits share dictionaries. Train is read first so that the
// common case (all vocabulary in train) yields train-dense IDs.
//
// If dir contains an entity_ids.del file the directory is treated as a
// LibKGE-format dataset instead: that layout carries explicit dense IDs, so a
// dataset dumped after mutations reloads with the exact entity-ID-to-
// embedding-row mapping the model was trained against (a plain TSV reload
// would re-intern in file order and silently misalign the rows).
func LoadDataset(name, dir string) (*Dataset, error) {
	if _, err := os.Stat(filepath.Join(dir, "entity_ids.del")); err == nil {
		return LoadLibKGEDataset(name, dir)
	}
	ents, rels := NewDict(), NewDict()
	d := &Dataset{
		Name:  name,
		Train: NewGraphWithDicts(ents, rels),
		Valid: NewGraphWithDicts(ents, rels),
		Test:  NewGraphWithDicts(ents, rels),
	}
	for _, part := range []struct {
		name string
		g    *Graph
	}{{"train.txt", d.Train}, {"valid.txt", d.Valid}, {"test.txt", d.Test}} {
		f, err := os.Open(filepath.Join(dir, part.name))
		if err != nil {
			return nil, err
		}
		_, err = ReadTSV(part.g, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("kg: %s/%s: %w", dir, part.name, err)
		}
	}
	return d, nil
}
