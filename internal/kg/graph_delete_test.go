package kg

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkAgainstRebuild asserts that every index and side table of g matches a
// graph rebuilt from scratch from g's current triples: the triple set, the
// by-relation index, per-relation unique subject/object lists and counts,
// global subject/object counts, the (s, r) adjacency, and membership.
func checkAgainstRebuild(t *testing.T, g *Graph) {
	t.Helper()
	fresh := NewGraphWithDicts(g.Entities, g.Relations)
	for _, tr := range g.Triples() {
		fresh.Add(tr)
	}
	g.BuildIndexes()
	fresh.BuildIndexes()

	if g.Len() != fresh.Len() {
		t.Fatalf("Len: got %d want %d", g.Len(), fresh.Len())
	}
	for _, tr := range fresh.Triples() {
		if !g.Contains(tr) {
			t.Fatalf("membership: %v missing from mutated graph", tr)
		}
	}
	for _, tr := range g.Triples() {
		if !fresh.Contains(tr) {
			t.Fatalf("membership: %v present in mutated graph but not rebuild", tr)
		}
	}

	if got, want := g.RelationIDs(), fresh.RelationIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RelationIDs: got %v want %v", got, want)
	}
	for _, r := range fresh.RelationIDs() {
		gs := append([]Triple(nil), g.RelationTriples(r)...)
		fs := append([]Triple(nil), fresh.RelationTriples(r)...)
		SortTriples(gs)
		SortTriples(fs)
		if !reflect.DeepEqual(gs, fs) {
			t.Fatalf("RelationTriples(%d): got %v want %v", r, gs, fs)
		}
		for _, side := range []Side{SubjectSide, ObjectSide} {
			if got, want := g.SideEntities(r, side), fresh.SideEntities(r, side); !reflect.DeepEqual(got, want) {
				t.Fatalf("SideEntities(%d, %v): got %v want %v", r, side, got, want)
			}
			for _, e := range fresh.SideEntities(r, side) {
				if got, want := g.SideCount(r, side, e), fresh.SideCount(r, side, e); got != want {
					t.Fatalf("SideCount(%d, %v, %d): got %d want %d", r, side, e, got, want)
				}
			}
		}
	}
	for e := 0; e < g.NumEntities(); e++ {
		id := EntityID(e)
		if got, want := g.SubjectCount(id), fresh.SubjectCount(id); got != want {
			t.Fatalf("SubjectCount(%d): got %d want %d", e, got, want)
		}
		if got, want := g.ObjectCount(id), fresh.ObjectCount(id); got != want {
			t.Fatalf("ObjectCount(%d): got %d want %d", e, got, want)
		}
	}
	for e := 0; e < g.NumEntities(); e++ {
		for r := 0; r < g.NumRelations(); r++ {
			got := g.ObjectsOf(EntityID(e), RelationID(r))
			want := fresh.ObjectsOf(EntityID(e), RelationID(r))
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ObjectsOf(%d, %d): got %v want %v", e, r, got, want)
			}
		}
	}

	// The live side tables must not retain empty entries for relations or
	// (s, r) pairs whose last triple was deleted; a rebuild never has them.
	if got, want := len(g.byRelation), len(fresh.byRelation); got != want {
		t.Fatalf("byRelation size: got %d want %d", got, want)
	}
	if got, want := len(g.relSubjects), len(fresh.relSubjects); got != want {
		t.Fatalf("relSubjects size: got %d want %d", got, want)
	}
	if got, want := len(g.relObjects), len(fresh.relObjects); got != want {
		t.Fatalf("relObjects size: got %d want %d", got, want)
	}
	if got, want := len(g.relSubjectCount), len(fresh.relSubjectCount); got != want {
		t.Fatalf("relSubjectCount size: got %d want %d", got, want)
	}
	if got, want := len(g.relObjectCount), len(fresh.relObjectCount); got != want {
		t.Fatalf("relObjectCount size: got %d want %d", got, want)
	}
	if got, want := len(g.srObjects), len(fresh.srObjects); got != want {
		t.Fatalf("srObjects size: got %d want %d", got, want)
	}
}

func TestDeleteBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddNamed("a", "r", "b")
	if g.Delete(Triple{S: 99, R: 99, O: 99}) {
		t.Fatal("Delete of absent triple reported true")
	}
	if !g.Delete(a) {
		t.Fatal("Delete of present triple reported false")
	}
	if g.Delete(a) {
		t.Fatal("second Delete of same triple reported true")
	}
	if g.Len() != 0 || g.Contains(a) {
		t.Fatalf("graph not empty after delete: len=%d contains=%v", g.Len(), g.Contains(a))
	}
	if got := len(g.RelationIDs()); got != 0 {
		t.Fatalf("RelationIDs after deleting last triple of relation: got %d entries", got)
	}
	if !g.Add(a) {
		t.Fatal("re-Add after Delete reported false")
	}
	if !g.Contains(a) || g.Len() != 1 {
		t.Fatal("re-Add after Delete did not restore the triple")
	}
}

// TestDeleteMatchesRebuild interleaves random adds and deletes — with side
// tables alternately live (built before the mutation) and lazy — and checks
// after each phase that every index matches a from-scratch rebuild.
func TestDeleteMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGraph()
	const nEnt, nRel = 12, 4
	for e := 0; e < nEnt; e++ {
		g.Entities.Intern(string(rune('a' + e)))
	}
	for r := 0; r < nRel; r++ {
		g.Relations.Intern(string(rune('p' + r)))
	}
	randTriple := func() Triple {
		return Triple{
			S: EntityID(rng.Intn(nEnt)),
			R: RelationID(rng.Intn(nRel)),
			O: EntityID(rng.Intn(nEnt)),
		}
	}
	var present []Triple
	for step := 0; step < 400; step++ {
		if step%7 == 0 {
			// Force the side tables live so the incremental maintenance
			// path (rather than the lazy rebuild) is what gets exercised.
			g.BuildIndexes()
		}
		if len(present) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(present))
			tr := present[i]
			if !g.Delete(tr) {
				t.Fatalf("step %d: Delete(%v) reported false for present triple", step, tr)
			}
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
		} else {
			tr := randTriple()
			if g.Add(tr) {
				present = append(present, tr)
			}
		}
		if step%25 == 0 {
			checkAgainstRebuild(t, g)
		}
	}
	checkAgainstRebuild(t, g)

	// Drain the graph completely and verify all indexes are empty.
	for _, tr := range append([]Triple(nil), g.Triples()...) {
		if !g.Delete(tr) {
			t.Fatalf("drain: Delete(%v) reported false", tr)
		}
	}
	if g.Len() != 0 {
		t.Fatalf("drain: %d triples remain", g.Len())
	}
	checkAgainstRebuild(t, g)
}
