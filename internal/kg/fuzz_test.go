package kg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV checks that the TSV parser never panics and that every graph
// it accepts round-trips through WriteTSV with identical fact content.
func FuzzReadTSV(f *testing.F) {
	f.Add("a\tr\tb\n")
	f.Add("a\tr\tb\nb\tr\tc\n# comment\n\n")
	f.Add("x\ty\n")
	f.Add("a\tb\tc\td\n")
	f.Add(strings.Repeat("e\tr\te\n", 50))
	f.Add("\t\t\n")
	f.Add("ünïcødé\t→\t日本語\n")

	f.Fuzz(func(t *testing.T, input string) {
		g := NewGraph()
		if _, err := ReadTSV(g, strings.NewReader(input)); err != nil {
			return // malformed input is fine as long as it does not panic
		}
		var buf bytes.Buffer
		if err := WriteTSV(g, &buf); err != nil {
			t.Fatalf("WriteTSV after successful parse: %v", err)
		}
		// Names containing newlines/tabs are impossible here (TSV fields
		// cannot contain the separators), so the round trip must preserve
		// the triple count exactly.
		g2 := NewGraph()
		if _, err := ReadTSV(g2, &buf); err != nil {
			t.Fatalf("re-parse of written TSV failed: %v", err)
		}
		if g2.Len() != g.Len() {
			t.Fatalf("roundtrip changed triple count: %d -> %d", g.Len(), g2.Len())
		}
	})
}
