package kg

import (
	"fmt"
	"math/rand"
)

// Dataset bundles the train/validation/test splits of one benchmark. All
// three graphs share entity and relation dictionaries.
type Dataset struct {
	Name  string
	Train *Graph
	Valid *Graph
	Test  *Graph
}

// Metadata mirrors Table 1 of the paper: split sizes plus entity and
// relation counts.
type Metadata struct {
	Name       string
	Train      int
	Validation int
	Test       int
	Entities   int
	Relations  int
}

// Metadata computes the Table 1 row for the dataset.
func (d *Dataset) Metadata() Metadata {
	return Metadata{
		Name:       d.Name,
		Train:      d.Train.Len(),
		Validation: d.Valid.Len(),
		Test:       d.Test.Len(),
		Entities:   d.Train.Entities.Len(),
		Relations:  d.Train.Relations.Len(),
	}
}

// All returns the union of the three splits (the filter graph for the
// filtered ranking protocol).
func (d *Dataset) All() *Graph {
	return Merge(d.Train, d.Valid, d.Test)
}

// String implements fmt.Stringer for Metadata.
func (m Metadata) String() string {
	return fmt.Sprintf("%s: train=%d valid=%d test=%d entities=%d relations=%d",
		m.Name, m.Train, m.Validation, m.Test, m.Entities, m.Relations)
}

// SplitOptions controls Split.
type SplitOptions struct {
	// ValidFrac and TestFrac are fractions of the total triples to place in
	// the validation and test splits (e.g. 0.05 each for the CoDEx 90:5:5
	// protocol). The remainder goes to train.
	ValidFrac float64
	TestFrac  float64
	// Seed drives the shuffle.
	Seed int64
	// NoUnseen, when true, guarantees that every entity and relation that
	// occurs in valid or test also occurs in train (the CoDEx property, also
	// required so embedding lookups never miss). Triples that would violate
	// it are moved back to train.
	NoUnseen bool
}

// Split partitions the triples of g into train/valid/test per opts. The
// returned graphs share g's dictionaries.
func Split(name string, g *Graph, opts SplitOptions) (*Dataset, error) {
	if opts.ValidFrac < 0 || opts.TestFrac < 0 || opts.ValidFrac+opts.TestFrac >= 1 {
		return nil, fmt.Errorf("kg: invalid split fractions valid=%g test=%g", opts.ValidFrac, opts.TestFrac)
	}
	triples := make([]Triple, g.Len())
	copy(triples, g.Triples())
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })

	nValid := int(float64(len(triples)) * opts.ValidFrac)
	nTest := int(float64(len(triples)) * opts.TestFrac)
	nTrain := len(triples) - nValid - nTest

	d := &Dataset{
		Name:  name,
		Train: NewGraphWithDicts(g.Entities, g.Relations),
		Valid: NewGraphWithDicts(g.Entities, g.Relations),
		Test:  NewGraphWithDicts(g.Entities, g.Relations),
	}

	trainTriples := triples[:nTrain]
	validTriples := triples[nTrain : nTrain+nValid]
	testTriples := triples[nTrain+nValid:]

	for _, t := range trainTriples {
		d.Train.Add(t)
	}

	if opts.NoUnseen {
		seenE := make(map[EntityID]bool)
		seenR := make(map[RelationID]bool)
		for _, t := range trainTriples {
			seenE[t.S], seenE[t.O], seenR[t.R] = true, true, true
		}
		place := func(dst *Graph, ts []Triple) {
			for _, t := range ts {
				if seenE[t.S] && seenE[t.O] && seenR[t.R] {
					dst.Add(t)
				} else {
					// Move back to train and mark its vocabulary as seen so
					// later triples referencing it can stay in their split.
					d.Train.Add(t)
					seenE[t.S], seenE[t.O], seenR[t.R] = true, true, true
				}
			}
		}
		place(d.Valid, validTriples)
		place(d.Test, testTriples)
	} else {
		for _, t := range validTriples {
			d.Valid.Add(t)
		}
		for _, t := range testTriples {
			d.Test.Add(t)
		}
	}
	return d, nil
}
