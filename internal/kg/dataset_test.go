package kg

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomGraph(seed int64, nEnt, nRel, nTriples int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	for i := 0; i < nEnt; i++ {
		g.Entities.Intern(fmt.Sprintf("e%d", i))
	}
	for i := 0; i < nRel; i++ {
		g.Relations.Intern(fmt.Sprintf("r%d", i))
	}
	for g.Len() < nTriples {
		g.Add(Triple{
			S: EntityID(rng.Intn(nEnt)),
			R: RelationID(rng.Intn(nRel)),
			O: EntityID(rng.Intn(nEnt)),
		})
	}
	return g
}

func TestSplitFractions(t *testing.T) {
	g := randomGraph(1, 50, 5, 1000)
	ds, err := Split("s", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.2, Seed: 7})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	total := ds.Train.Len() + ds.Valid.Len() + ds.Test.Len()
	if total != g.Len() {
		t.Fatalf("split loses triples: %d != %d", total, g.Len())
	}
	if ds.Valid.Len() != 100 {
		t.Errorf("valid = %d, want 100", ds.Valid.Len())
	}
	if ds.Test.Len() != 200 {
		t.Errorf("test = %d, want 200", ds.Test.Len())
	}
}

func TestSplitDisjoint(t *testing.T) {
	g := randomGraph(2, 40, 4, 600)
	ds, err := Split("s", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.1, Seed: 11})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	for _, tr := range ds.Valid.Triples() {
		if ds.Train.Contains(tr) || ds.Test.Contains(tr) {
			t.Fatalf("triple %v appears in multiple splits", tr)
		}
	}
	for _, tr := range ds.Test.Triples() {
		if ds.Train.Contains(tr) {
			t.Fatalf("test triple %v leaked into train", tr)
		}
	}
}

func TestSplitNoUnseen(t *testing.T) {
	g := randomGraph(3, 200, 8, 800) // sparse: unseen entities likely without the guard
	ds, err := Split("s", g, SplitOptions{ValidFrac: 0.2, TestFrac: 0.2, Seed: 5, NoUnseen: true})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	seenE := make(map[EntityID]bool)
	seenR := make(map[RelationID]bool)
	for _, tr := range ds.Train.Triples() {
		seenE[tr.S], seenE[tr.O], seenR[tr.R] = true, true, true
	}
	check := func(name string, g *Graph) {
		for _, tr := range g.Triples() {
			if !seenE[tr.S] || !seenE[tr.O] || !seenR[tr.R] {
				t.Fatalf("%s triple %v references vocabulary unseen in train", name, tr)
			}
		}
	}
	check("valid", ds.Valid)
	check("test", ds.Test)
}

func TestSplitDeterministic(t *testing.T) {
	g := randomGraph(4, 30, 3, 400)
	a, err := Split("s", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split("s", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Train.Len() != b.Train.Len() {
		t.Fatalf("non-deterministic split sizes")
	}
	for _, tr := range a.Train.Triples() {
		if !b.Train.Contains(tr) {
			t.Fatalf("same seed produced different train split")
		}
	}
}

func TestSplitRejectsBadFractions(t *testing.T) {
	g := randomGraph(5, 10, 2, 50)
	for _, opts := range []SplitOptions{
		{ValidFrac: -0.1, TestFrac: 0.1},
		{ValidFrac: 0.6, TestFrac: 0.5},
	} {
		if _, err := Split("s", g, opts); err == nil {
			t.Errorf("Split accepted invalid fractions %+v", opts)
		}
	}
}

func TestMetadata(t *testing.T) {
	g := randomGraph(6, 25, 4, 300)
	ds, err := Split("meta-ds", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Metadata()
	if m.Name != "meta-ds" {
		t.Errorf("name = %q", m.Name)
	}
	if m.Train != ds.Train.Len() || m.Validation != ds.Valid.Len() || m.Test != ds.Test.Len() {
		t.Errorf("metadata split sizes wrong: %+v", m)
	}
	if m.Entities != 25 || m.Relations != 4 {
		t.Errorf("metadata vocab sizes wrong: %+v", m)
	}
}

func TestDatasetAll(t *testing.T) {
	g := randomGraph(7, 20, 3, 200)
	ds, err := Split("s", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := ds.All()
	if all.Len() != g.Len() {
		t.Fatalf("All() has %d triples, want %d", all.Len(), g.Len())
	}
}
