package kg

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file reads and writes the dataset layout used by LibKGE — the
// library the paper trains its models with — so datasets prepared for
// LibKGE can be used here directly and vice versa:
//
//	entity_ids.del    <id> \t <name>
//	relation_ids.del  <id> \t <name>
//	train.del         <subject id> \t <relation id> \t <object id>
//	valid.del / test.del
//
// IDs in the .del files must be dense and must match the dictionary files.

// LoadLibKGEDataset reads a LibKGE-format dataset directory.
func LoadLibKGEDataset(name, dir string) (*Dataset, error) {
	ents, err := readIDFile(filepath.Join(dir, "entity_ids.del"))
	if err != nil {
		return nil, err
	}
	rels, err := readIDFile(filepath.Join(dir, "relation_ids.del"))
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:  name,
		Train: NewGraphWithDicts(ents, rels),
		Valid: NewGraphWithDicts(ents, rels),
		Test:  NewGraphWithDicts(ents, rels),
	}
	for _, part := range []struct {
		file string
		g    *Graph
	}{{"train.del", d.Train}, {"valid.del", d.Valid}, {"test.del", d.Test}} {
		if err := readTripleIDFile(filepath.Join(dir, part.file), part.g); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SaveLibKGEDataset writes ds in LibKGE's layout under dir.
func SaveLibKGEDataset(d *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeIDFile(filepath.Join(dir, "entity_ids.del"), d.Train.Entities); err != nil {
		return err
	}
	if err := writeIDFile(filepath.Join(dir, "relation_ids.del"), d.Train.Relations); err != nil {
		return err
	}
	for _, part := range []struct {
		file string
		g    *Graph
	}{{"train.del", d.Train}, {"valid.del", d.Valid}, {"test.del", d.Test}} {
		if err := writeTripleIDFile(filepath.Join(dir, part.file), part.g); err != nil {
			return err
		}
	}
	return nil
}

// readIDFile loads "<id>\t<name>" lines into a Dict, verifying density.
func readIDFile(path string) (*Dict, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := NewDict()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("kg: %s:%d: expected '<id>\\t<name>'", path, line)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("kg: %s:%d: bad id %q", path, line, parts[0])
		}
		got := d.Intern(parts[1])
		if int(got) != id {
			return nil, fmt.Errorf("kg: %s:%d: non-dense or out-of-order id %d (expected %d)", path, line, id, got)
		}
	}
	return d, sc.Err()
}

func writeIDFile(path string, d *Dict) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i, name := range d.Names() {
		if _, err := fmt.Fprintf(w, "%d\t%s\n", i, name); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readTripleIDFile loads "<s>\t<r>\t<o>" integer-ID lines into g.
func readTripleIDFile(path string, g *Graph) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return readTripleIDs(f, g, path)
}

func readTripleIDs(r io.Reader, g *Graph, label string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	nEnt := int32(g.Entities.Len())
	nRel := int32(g.Relations.Len())
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			return fmt.Errorf("kg: %s:%d: expected 3 tab-separated ids", label, line)
		}
		ids := make([]int64, 3)
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
			if err != nil {
				return fmt.Errorf("kg: %s:%d: bad id %q", label, line, p)
			}
			ids[i] = v
		}
		if ids[0] < 0 || ids[0] >= int64(nEnt) || ids[2] < 0 || ids[2] >= int64(nEnt) {
			return fmt.Errorf("kg: %s:%d: entity id out of range [0,%d)", label, line, nEnt)
		}
		if ids[1] < 0 || ids[1] >= int64(nRel) {
			return fmt.Errorf("kg: %s:%d: relation id out of range [0,%d)", label, line, nRel)
		}
		g.Add(Triple{S: EntityID(ids[0]), R: RelationID(ids[1]), O: EntityID(ids[2])})
	}
	return sc.Err()
}

func writeTripleIDFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	ts := make([]Triple, g.Len())
	copy(ts, g.Triples())
	SortTriples(ts)
	for _, t := range ts {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\n", t.S, t.R, t.O); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
