package kg

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTSVBasic(t *testing.T) {
	input := "a\tlikes\tb\n# comment\n\nb\tlikes\tc\na\tlikes\tb\n"
	g := NewGraph()
	n, err := ReadTSV(g, strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if n != 3 {
		t.Errorf("read %d lines, want 3", n)
	}
	if g.Len() != 2 {
		t.Errorf("graph has %d triples, want 2 (dedup)", g.Len())
	}
}

func TestReadTSVMalformed(t *testing.T) {
	g := NewGraph()
	_, err := ReadTSV(g, strings.NewReader("only\ttwo\n"))
	if err == nil {
		t.Fatal("expected error for 2-field line")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error %q does not identify the line", err)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	g := NewGraph()
	g.AddNamed("zeus", "father_of", "ares")
	g.AddNamed("hera", "mother_of", "ares")
	g.AddNamed("zeus", "married_to", "hera")

	var buf bytes.Buffer
	if err := WriteTSV(g, &buf); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	g2 := NewGraph()
	if _, err := ReadTSV(g2, &buf); err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("roundtrip triples = %d, want %d", g2.Len(), g.Len())
	}
	// Same facts by name (IDs may differ).
	for _, tr := range g.Triples() {
		s := g.Entities.Name(int32(tr.S))
		r := g.Relations.Name(int32(tr.R))
		o := g.Entities.Name(int32(tr.O))
		s2, ok1 := g2.Entities.Lookup(s)
		r2, ok2 := g2.Relations.Lookup(r)
		o2, ok3 := g2.Entities.Lookup(o)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("vocabulary lost for %s %s %s", s, r, o)
		}
		if !g2.Contains(Triple{S: EntityID(s2), R: RelationID(r2), O: EntityID(o2)}) {
			t.Errorf("fact (%s, %s, %s) lost in roundtrip", s, r, o)
		}
	}
}

func TestSaveLoadDataset(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 50; i++ {
		g.AddNamed(string(rune('a'+i%20)), "rel", string(rune('A'+(i*7)%20)))
	}
	ds, err := Split("test-ds", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.1, Seed: 3, NoUnseen: true})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := SaveDataset(ds, dir); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	back, err := LoadDataset("test-ds", dir)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if back.Train.Len() != ds.Train.Len() || back.Valid.Len() != ds.Valid.Len() || back.Test.Len() != ds.Test.Len() {
		t.Errorf("split sizes changed: got %d/%d/%d, want %d/%d/%d",
			back.Train.Len(), back.Valid.Len(), back.Test.Len(),
			ds.Train.Len(), ds.Valid.Len(), ds.Test.Len())
	}
	if back.Train.Entities != back.Valid.Entities || back.Train.Entities != back.Test.Entities {
		t.Error("loaded splits do not share dictionaries")
	}
}

func TestLoadDatasetMissingFile(t *testing.T) {
	if _, err := LoadDataset("x", t.TempDir()); err == nil {
		t.Fatal("expected error for missing files")
	}
}
