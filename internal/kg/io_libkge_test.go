package kg

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLibKGERoundtrip(t *testing.T) {
	g := randomGraph(21, 40, 5, 500)
	ds, err := Split("lib", g, SplitOptions{ValidFrac: 0.1, TestFrac: 0.1, Seed: 4, NoUnseen: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "libkge")
	if err := SaveLibKGEDataset(ds, dir); err != nil {
		t.Fatalf("SaveLibKGEDataset: %v", err)
	}
	for _, f := range []string{"entity_ids.del", "relation_ids.del", "train.del", "valid.del", "test.del"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	back, err := LoadLibKGEDataset("lib", dir)
	if err != nil {
		t.Fatalf("LoadLibKGEDataset: %v", err)
	}
	if back.Train.Len() != ds.Train.Len() || back.Valid.Len() != ds.Valid.Len() || back.Test.Len() != ds.Test.Len() {
		t.Fatalf("sizes changed: %d/%d/%d vs %d/%d/%d",
			back.Train.Len(), back.Valid.Len(), back.Test.Len(),
			ds.Train.Len(), ds.Valid.Len(), ds.Test.Len())
	}
	// Names are preserved through the ID files: every original fact must be
	// recoverable by name.
	for _, tr := range ds.Train.Triples() {
		s := ds.Train.Entities.Name(int32(tr.S))
		r := ds.Train.Relations.Name(int32(tr.R))
		o := ds.Train.Entities.Name(int32(tr.O))
		sid, _ := back.Train.Entities.Lookup(s)
		rid, _ := back.Train.Relations.Lookup(r)
		oid, _ := back.Train.Entities.Lookup(o)
		if !back.Train.Contains(Triple{S: EntityID(sid), R: RelationID(rid), O: EntityID(oid)}) {
			t.Fatalf("fact (%s,%s,%s) lost in LibKGE roundtrip", s, r, o)
		}
	}
}

func writeLibKGEFixture(t *testing.T, entityIDs, relationIDs, train string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"entity_ids.del":   entityIDs,
		"relation_ids.del": relationIDs,
		"train.del":        train,
		"valid.del":        "",
		"test.del":         "",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadLibKGEValid(t *testing.T) {
	dir := writeLibKGEFixture(t, "0\talice\n1\tbob\n", "0\tknows\n", "0\t0\t1\n")
	ds, err := LoadLibKGEDataset("x", dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if ds.Train.Len() != 1 {
		t.Errorf("train = %d, want 1", ds.Train.Len())
	}
	if name := ds.Train.Entities.Name(0); name != "alice" {
		t.Errorf("entity 0 = %q", name)
	}
}

func TestLoadLibKGEErrors(t *testing.T) {
	cases := []struct {
		name                string
		ents, rels, triples string
	}{
		{"non-dense ids", "0\talice\n2\tbob\n", "0\tr\n", ""},
		{"malformed id line", "zero\talice\n", "0\tr\n", ""},
		{"missing tab", "0 alice\n", "0\tr\n", ""},
		{"entity out of range", "0\talice\n", "0\tr\n", "0\t0\t5\n"},
		{"relation out of range", "0\talice\n1\tbob\n", "0\tr\n", "0\t3\t1\n"},
		{"bad triple field", "0\talice\n1\tbob\n", "0\tr\n", "0\tx\t1\n"},
		{"two fields", "0\talice\n1\tbob\n", "0\tr\n", "0\t1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeLibKGEFixture(t, tc.ents, tc.rels, tc.triples)
			if _, err := LoadLibKGEDataset("x", dir); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}

func TestLoadLibKGEMissingDir(t *testing.T) {
	if _, err := LoadLibKGEDataset("x", filepath.Join(t.TempDir(), "none")); err == nil {
		t.Fatal("accepted missing directory")
	}
}
