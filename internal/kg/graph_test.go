package kg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDictInternIsIdempotent(t *testing.T) {
	d := NewDict()
	a := d.Intern("alice")
	b := d.Intern("bob")
	if a == b {
		t.Fatalf("distinct names got same ID %d", a)
	}
	if again := d.Intern("alice"); again != a {
		t.Errorf("re-intern of alice: got %d, want %d", again, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "alice" || d.Name(b) != "bob" {
		t.Errorf("names roundtrip failed: %q, %q", d.Name(a), d.Name(b))
	}
}

func TestDictLookupDoesNotIntern(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("ghost"); ok {
		t.Fatal("Lookup found a name that was never interned")
	}
	if d.Len() != 0 {
		t.Errorf("Lookup interned: Len = %d, want 0", d.Len())
	}
}

func TestDictIDsAreDense(t *testing.T) {
	d := NewDict()
	for i := 0; i < 100; i++ {
		id := d.Intern(string(rune('a' + i%26)))
		if int(id) >= d.Len() {
			t.Fatalf("ID %d >= Len %d", id, d.Len())
		}
	}
}

func TestDictNamePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range ID")
		}
	}()
	NewDict().Name(0)
}

func TestGraphAddAndContains(t *testing.T) {
	g := NewGraph()
	t1 := g.AddNamed("a", "likes", "b")
	if !g.Contains(t1) {
		t.Fatal("graph does not contain added triple")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	// Duplicate add is a no-op.
	if g.Add(t1) {
		t.Error("duplicate Add reported insertion")
	}
	if g.Len() != 1 {
		t.Errorf("after duplicate add Len = %d, want 1", g.Len())
	}
	if g.Contains(Triple{S: 9, R: 9, O: 9}) {
		t.Error("graph claims to contain an absent triple")
	}
}

func TestGraphCounts(t *testing.T) {
	g := NewGraph()
	g.AddNamed("a", "r1", "b")
	g.AddNamed("a", "r1", "c")
	g.AddNamed("b", "r2", "a")
	a, _ := g.Entities.Lookup("a")
	b, _ := g.Entities.Lookup("b")

	if got := g.SubjectCount(EntityID(a)); got != 2 {
		t.Errorf("SubjectCount(a) = %d, want 2", got)
	}
	if got := g.ObjectCount(EntityID(a)); got != 1 {
		t.Errorf("ObjectCount(a) = %d, want 1", got)
	}
	if got := g.Degree(EntityID(a)); got != 3 {
		t.Errorf("Degree(a) = %d, want 3", got)
	}
	if got := g.Degree(EntityID(b)); got != 2 {
		t.Errorf("Degree(b) = %d, want 2", got)
	}
	// Entity beyond any count table has zero counts.
	if got := g.Degree(EntityID(1000)); got != 0 {
		t.Errorf("Degree(unknown) = %d, want 0", got)
	}
}

func TestGraphSideEntities(t *testing.T) {
	g := NewGraph()
	g.AddNamed("a", "r", "b")
	g.AddNamed("a", "r", "c")
	g.AddNamed("d", "r", "b")
	g.AddNamed("x", "other", "y")
	r, _ := g.Relations.Lookup("r")

	subs := g.SideEntities(RelationID(r), SubjectSide)
	if len(subs) != 2 {
		t.Fatalf("unique subjects = %d, want 2", len(subs))
	}
	objs := g.SideEntities(RelationID(r), ObjectSide)
	if len(objs) != 2 {
		t.Fatalf("unique objects = %d, want 2", len(objs))
	}
	a, _ := g.Entities.Lookup("a")
	if got := g.SideCount(RelationID(r), SubjectSide, EntityID(a)); got != 2 {
		t.Errorf("SideCount(r, subject, a) = %d, want 2", got)
	}
	b, _ := g.Entities.Lookup("b")
	if got := g.SideCount(RelationID(r), ObjectSide, EntityID(b)); got != 2 {
		t.Errorf("SideCount(r, object, b) = %d, want 2", got)
	}
}

func TestGraphSideTablesRefreshAfterMutation(t *testing.T) {
	g := NewGraph()
	g.AddNamed("a", "r", "b")
	r, _ := g.Relations.Lookup("r")
	if n := len(g.SideEntities(RelationID(r), SubjectSide)); n != 1 {
		t.Fatalf("subjects = %d, want 1", n)
	}
	g.AddNamed("c", "r", "b") // mutate after a query
	if n := len(g.SideEntities(RelationID(r), SubjectSide)); n != 2 {
		t.Errorf("subjects after mutation = %d, want 2 (stale side tables)", n)
	}
}

func TestGraphRelationIDsSorted(t *testing.T) {
	g := NewGraph()
	g.AddNamed("a", "r2", "b")
	g.AddNamed("a", "r0", "b")
	g.AddNamed("a", "r1", "b")
	ids := g.RelationIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("RelationIDs not strictly ascending: %v", ids)
		}
	}
	if len(ids) != 3 {
		t.Errorf("RelationIDs = %v, want 3 ids", ids)
	}
}

func TestMergeUnion(t *testing.T) {
	g1 := NewGraph()
	g1.AddNamed("a", "r", "b")
	g2 := NewGraphWithDicts(g1.Entities, g1.Relations)
	g2.AddNamed("a", "r", "b") // shared triple
	g2.AddNamed("b", "r", "a")

	m := Merge(g1, g2)
	if m.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", m.Len())
	}
	for _, tr := range g1.Triples() {
		if !m.Contains(tr) {
			t.Errorf("merge missing %v", tr)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewGraph()
	g.AddNamed("a", "r", "b")
	c := g.Clone()
	g.AddNamed("x", "r", "y")
	if c.Len() != 1 {
		t.Errorf("clone observed mutation of original: Len = %d, want 1", c.Len())
	}
}

func TestTripleCorrupted(t *testing.T) {
	tr := Triple{S: 1, R: 2, O: 3}
	if got := tr.Corrupted(SubjectSide, 7); got != (Triple{S: 7, R: 2, O: 3}) {
		t.Errorf("subject corruption = %v", got)
	}
	if got := tr.Corrupted(ObjectSide, 7); got != (Triple{S: 1, R: 2, O: 7}) {
		t.Errorf("object corruption = %v", got)
	}
	if tr != (Triple{S: 1, R: 2, O: 3}) {
		t.Error("Corrupted mutated its receiver")
	}
}

func TestSortTriplesOrdering(t *testing.T) {
	ts := []Triple{{2, 0, 0}, {1, 2, 0}, {1, 1, 5}, {1, 1, 2}}
	SortTriples(ts)
	want := []Triple{{1, 1, 2}, {1, 1, 5}, {1, 2, 0}, {2, 0, 0}}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

// Property: for any random set of triples, the graph contains exactly the
// distinct triples added, and per-side counts sum to the triple count.
func TestGraphPropertyCountsConsistent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		distinct := make(map[Triple]struct{})
		for i := 0; i < int(n)+1; i++ {
			tr := Triple{
				S: EntityID(rng.Intn(10)),
				R: RelationID(rng.Intn(4)),
				O: EntityID(rng.Intn(10)),
			}
			g.Add(tr)
			distinct[tr] = struct{}{}
		}
		if g.Len() != len(distinct) {
			return false
		}
		var subSum, objSum int64
		for e := EntityID(0); e < 10; e++ {
			subSum += g.SubjectCount(e)
			objSum += g.ObjectCount(e)
		}
		return subSum == int64(g.Len()) && objSum == int64(g.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: side tables partition the relation's triples — the sum of
// SideCount over SideEntities equals the number of triples of the relation.
func TestGraphPropertySideCountsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < 200; i++ {
			g.Add(Triple{
				S: EntityID(rng.Intn(20)),
				R: RelationID(rng.Intn(5)),
				O: EntityID(rng.Intn(20)),
			})
		}
		for _, r := range g.RelationIDs() {
			var sum int64
			for _, e := range g.SideEntities(r, SubjectSide) {
				sum += g.SideCount(r, SubjectSide, e)
			}
			if sum != int64(len(g.RelationTriples(r))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
