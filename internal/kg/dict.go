package kg

import (
	"fmt"
	"sort"
)

// Dict is a bidirectional mapping between names and dense integer IDs. A
// Graph holds one Dict for entities and one for relations; train, validation
// and test splits of the same dataset share Dicts so that IDs agree across
// splits (the protocol used by LibKGE and required by the filtered ranking
// protocol).
//
// The zero value is not usable; construct with NewDict.
type Dict struct {
	names []string
	ids   map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Len reports the number of distinct names interned so far.
func (d *Dict) Len() int { return len(d.names) }

// Intern returns the ID for name, assigning the next dense ID if the name has
// not been seen before.
func (d *Dict) Intern(name string) int32 {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the ID for name and whether it is present, without interning.
func (d *Dict) Lookup(name string) (int32, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name for id. It panics if id is out of range, which
// indicates a programming error (IDs are only ever produced by Intern).
func (d *Dict) Name(id int32) string {
	if id < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("kg: dict id %d out of range [0,%d)", id, len(d.names)))
	}
	return d.names[id]
}

// Names returns a copy of all interned names in ID order.
func (d *Dict) Names() []string {
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// SortedNames returns all names in lexicographic order (for deterministic
// reports; IDs are insertion-ordered, not sorted).
func (d *Dict) SortedNames() []string {
	out := d.Names()
	sort.Strings(out)
	return out
}
