// Package kg provides the knowledge-graph substrate used throughout the
// repository: identifier spaces for entities and relations, the Triple type,
// an indexed in-memory triple store (Graph), dataset splits, and TSV I/O in
// the common (subject \t relation \t object) format.
//
// Everything downstream — graph analytics, KGE training, and the fact
// discovery algorithm — consumes these types. A knowledge graph G ⊆ E×R×E is
// a set of facts (s, r, o) with s, o ∈ E entities and r ∈ R relations.
package kg

import (
	"fmt"
	"sort"
)

// EntityID identifies an entity within a Dict. IDs are dense, starting at 0,
// which lets downstream code use plain slices as entity-indexed tables.
type EntityID int32

// RelationID identifies a relation type within a Dict. IDs are dense,
// starting at 0.
type RelationID int32

// Triple is a single fact (s, r, o): a directed, labeled edge from subject s
// to object o with relation type r. Triple is comparable and therefore
// usable directly as a map key.
type Triple struct {
	S EntityID
	R RelationID
	O EntityID
}

// String renders the triple using raw IDs; use Graph.FormatTriple for names.
func (t Triple) String() string {
	return fmt.Sprintf("(%d, %d, %d)", t.S, t.R, t.O)
}

// Corrupted returns a copy of t with the object replaced (side == ObjectSide)
// or the subject replaced (side == SubjectSide).
func (t Triple) Corrupted(side Side, e EntityID) Triple {
	switch side {
	case SubjectSide:
		t.S = e
	case ObjectSide:
		t.O = e
	}
	return t
}

// Side distinguishes the subject and object positions of a triple. Several
// sampling strategies in the paper (UNIFORM RANDOM, ENTITY FREQUENCY) weight
// the two sides independently.
type Side uint8

const (
	// SubjectSide selects the subject position of a triple.
	SubjectSide Side = iota
	// ObjectSide selects the object position of a triple.
	ObjectSide
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case SubjectSide:
		return "subject"
	case ObjectSide:
		return "object"
	default:
		return fmt.Sprintf("Side(%d)", uint8(s))
	}
}

// SortTriples orders triples lexicographically by (S, R, O). It is used to
// produce deterministic output files and canonical test fixtures.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.R != b.R {
			return a.R < b.R
		}
		return a.O < b.O
	})
}
