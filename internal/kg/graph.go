package kg

import (
	"fmt"
	"sort"
)

// Graph is an indexed, in-memory triple store. It maintains, besides the
// triple list itself:
//
//   - O(1) membership testing (needed to filter "seen" triples during both
//     fact discovery and filtered ranking),
//   - a by-relation index (the discovery algorithm iterates per relation),
//   - per-relation unique subject/object lists with occurrence counts (the
//     inputs to the UNIFORM RANDOM and ENTITY FREQUENCY strategies),
//   - global per-entity subject/object/total occurrence counts.
//
// A Graph is cheap to query concurrently once built; mutation (Add, Delete)
// is not safe for concurrent use.
type Graph struct {
	Entities  *Dict
	Relations *Dict

	triples []Triple
	set     map[Triple]tripleLoc

	byRelation map[RelationID][]Triple

	subjectCount []int64 // per entity: appearances as subject
	objectCount  []int64 // per entity: appearances as object

	dirty bool // per-relation side tables need rebuilding

	relSubjects map[RelationID][]EntityID // unique subjects per relation, sorted
	relObjects  map[RelationID][]EntityID // unique objects per relation, sorted

	relSubjectCount map[RelationID]map[EntityID]int64
	relObjectCount  map[RelationID]map[EntityID]int64

	srObjects map[srKey][]EntityID // objects adjacent to each (subject, relation) pair, sorted
}

// srKey indexes the (subject, relation) adjacency used by grouped filtered
// ranking: all true objects of one (s, r) pair in a single lookup instead of
// |E| Contains probes.
type srKey struct {
	s EntityID
	r RelationID
}

// tripleLoc records where a triple lives inside the two positional slices so
// Delete can swap-remove it in O(1). Discovery never depends on slice order
// (candidate pools are sorted, membership is a set), so swap-remove is safe.
type tripleLoc struct {
	pos    int // index in triples
	relPos int // index in byRelation[R]
}

// NewGraph returns an empty graph with fresh entity and relation dictionaries.
func NewGraph() *Graph {
	return NewGraphWithDicts(NewDict(), NewDict())
}

// NewGraphWithDicts returns an empty graph sharing the given dictionaries.
// Splits of one dataset share dictionaries so IDs agree across splits.
func NewGraphWithDicts(entities, relations *Dict) *Graph {
	return &Graph{
		Entities:   entities,
		Relations:  relations,
		set:        make(map[Triple]tripleLoc),
		byRelation: make(map[RelationID][]Triple),
	}
}

// Add inserts t if not already present and reports whether it was inserted.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = tripleLoc{pos: len(g.triples), relPos: len(g.byRelation[t.R])}
	g.triples = append(g.triples, t)
	g.byRelation[t.R] = append(g.byRelation[t.R], t)
	g.bump(&g.subjectCount, t.S)
	g.bump(&g.objectCount, t.O)
	if g.tablesLive() {
		g.sideAdd(t)
	} else {
		g.dirty = true
	}
	return true
}

// Delete removes t if present and reports whether it was removed. Side tables
// that are already built are maintained incrementally; otherwise the next
// query triggers the usual lazy rebuild.
func (g *Graph) Delete(t Triple) bool {
	loc, ok := g.set[t]
	if !ok {
		return false
	}
	delete(g.set, t)
	if last := len(g.triples) - 1; loc.pos != last {
		moved := g.triples[last]
		g.triples[loc.pos] = moved
		ml := g.set[moved]
		ml.pos = loc.pos
		g.set[moved] = ml
		g.triples = g.triples[:last]
	} else {
		g.triples = g.triples[:last]
	}
	rel := g.byRelation[t.R]
	if last := len(rel) - 1; loc.relPos != last {
		moved := rel[last]
		rel[loc.relPos] = moved
		ml := g.set[moved]
		ml.relPos = loc.relPos
		g.set[moved] = ml
		rel = rel[:last]
	} else {
		rel = rel[:last]
	}
	if len(rel) == 0 {
		delete(g.byRelation, t.R)
	} else {
		g.byRelation[t.R] = rel
	}
	g.subjectCount[t.S]--
	g.objectCount[t.O]--
	if g.tablesLive() {
		g.sideDelete(t)
	} else {
		g.dirty = true
	}
	return true
}

// tablesLive reports whether the per-relation side tables are built and in
// sync with the triple set, so mutations can maintain them incrementally
// instead of marking the graph dirty for a full lazy rebuild.
func (g *Graph) tablesLive() bool {
	return g.relSubjects != nil && !g.dirty
}

// sideAdd folds one inserted triple into the live side tables, keeping them
// exactly equal to what rebuildSideTables would produce from scratch.
func (g *Graph) sideAdd(t Triple) {
	sc := g.relSubjectCount[t.R]
	if sc == nil {
		sc = make(map[EntityID]int64)
		g.relSubjectCount[t.R] = sc
	}
	sc[t.S]++
	if sc[t.S] == 1 {
		g.relSubjects[t.R] = insertSorted(g.relSubjects[t.R], t.S)
	}
	oc := g.relObjectCount[t.R]
	if oc == nil {
		oc = make(map[EntityID]int64)
		g.relObjectCount[t.R] = oc
	}
	oc[t.O]++
	if oc[t.O] == 1 {
		g.relObjects[t.R] = insertSorted(g.relObjects[t.R], t.O)
	}
	k := srKey{t.S, t.R}
	g.srObjects[k] = insertSorted(g.srObjects[k], t.O)
}

// sideDelete removes one deleted triple from the live side tables, deleting
// map entries that become empty so the result matches a from-scratch rebuild.
func (g *Graph) sideDelete(t Triple) {
	sc := g.relSubjectCount[t.R]
	sc[t.S]--
	if sc[t.S] == 0 {
		delete(sc, t.S)
		g.relSubjects[t.R] = removeSorted(g.relSubjects[t.R], t.S)
	}
	if len(sc) == 0 {
		delete(g.relSubjectCount, t.R)
		delete(g.relSubjects, t.R)
	}
	oc := g.relObjectCount[t.R]
	oc[t.O]--
	if oc[t.O] == 0 {
		delete(oc, t.O)
		g.relObjects[t.R] = removeSorted(g.relObjects[t.R], t.O)
	}
	if len(oc) == 0 {
		delete(g.relObjectCount, t.R)
		delete(g.relObjects, t.R)
	}
	k := srKey{t.S, t.R}
	if os := removeSorted(g.srObjects[k], t.O); len(os) == 0 {
		delete(g.srObjects, k)
	} else {
		g.srObjects[k] = os
	}
}

// insertSorted inserts e into the ascending slice s, keeping it sorted.
func insertSorted(s []EntityID, e EntityID) []EntityID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// removeSorted removes one occurrence of e from the ascending slice s.
func removeSorted(s []EntityID, e EntityID) []EntityID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	if i >= len(s) || s[i] != e {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

func (g *Graph) bump(counts *[]int64, e EntityID) {
	for int(e) >= len(*counts) {
		*counts = append(*counts, 0)
	}
	(*counts)[e]++
}

// AddNamed interns the names and inserts the resulting triple, returning it.
func (g *Graph) AddNamed(s, r, o string) Triple {
	t := Triple{
		S: EntityID(g.Entities.Intern(s)),
		R: RelationID(g.Relations.Intern(r)),
		O: EntityID(g.Entities.Intern(o)),
	}
	g.Add(t)
	return t
}

// Contains reports whether t is a fact of the graph.
func (g *Graph) Contains(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len returns the number of triples M = |G|.
func (g *Graph) Len() int { return len(g.triples) }

// NumEntities returns N = |E| (as interned in the shared entity dictionary).
func (g *Graph) NumEntities() int { return g.Entities.Len() }

// NumRelations returns K = |R|.
func (g *Graph) NumRelations() int { return g.Relations.Len() }

// Triples returns the backing triple slice in insertion order. The caller
// must not modify it.
func (g *Graph) Triples() []Triple { return g.triples }

// RelationTriples returns all triples with relation r. The caller must not
// modify the returned slice.
func (g *Graph) RelationTriples(r RelationID) []Triple { return g.byRelation[r] }

// RelationIDs returns the IDs of all relations that occur in at least one
// triple, in ascending order. Note this may be a subset of the dictionary if
// the dictionary is shared with other splits.
func (g *Graph) RelationIDs() []RelationID {
	out := make([]RelationID, 0, len(g.byRelation))
	for r := range g.byRelation {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubjectCount returns how many triples have e as subject.
func (g *Graph) SubjectCount(e EntityID) int64 {
	if int(e) >= len(g.subjectCount) {
		return 0
	}
	return g.subjectCount[e]
}

// ObjectCount returns how many triples have e as object.
func (g *Graph) ObjectCount(e EntityID) int64 {
	if int(e) >= len(g.objectCount) {
		return 0
	}
	return g.objectCount[e]
}

// Degree returns the total degree of e: in-degree plus out-degree, counting
// every triple incident to e once per position (self-loops count twice, once
// per side), matching the paper's deg(x) = in + out.
func (g *Graph) Degree(e EntityID) int64 {
	return g.SubjectCount(e) + g.ObjectCount(e)
}

func (g *Graph) rebuildSideTables() {
	if !g.dirty && g.relSubjects != nil {
		return
	}
	g.relSubjects = make(map[RelationID][]EntityID, len(g.byRelation))
	g.relObjects = make(map[RelationID][]EntityID, len(g.byRelation))
	g.relSubjectCount = make(map[RelationID]map[EntityID]int64, len(g.byRelation))
	g.relObjectCount = make(map[RelationID]map[EntityID]int64, len(g.byRelation))
	g.srObjects = make(map[srKey][]EntityID, len(g.triples))
	for r, ts := range g.byRelation {
		sc := make(map[EntityID]int64)
		oc := make(map[EntityID]int64)
		for _, t := range ts {
			sc[t.S]++
			oc[t.O]++
			k := srKey{t.S, t.R}
			g.srObjects[k] = append(g.srObjects[k], t.O)
		}
		g.relSubjectCount[r] = sc
		g.relObjectCount[r] = oc
		g.relSubjects[r] = sortedKeys(sc)
		g.relObjects[r] = sortedKeys(oc)
	}
	for _, os := range g.srObjects {
		sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
	}
	g.dirty = false
}

// ObjectsOf returns the objects o with (s, r, o) ∈ g, in ascending ID order.
// The caller must not modify the returned slice. The first call after a
// mutation rebuilds the side tables; call BuildIndexes before sharing the
// graph across goroutines.
func (g *Graph) ObjectsOf(s EntityID, r RelationID) []EntityID {
	g.rebuildSideTables()
	return g.srObjects[srKey{s, r}]
}

// BuildIndexes forces the lazy side tables (per-relation entity lists and
// the (s, r) adjacency) to be built now. Queries on an unmutated graph are
// then safe for concurrent use; without this, the first concurrent lazy
// rebuild would race.
func (g *Graph) BuildIndexes() {
	g.rebuildSideTables()
}

func sortedKeys(m map[EntityID]int64) []EntityID {
	out := make([]EntityID, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SideEntities returns the unique entities appearing on the given side of
// relation r, in ascending ID order. The caller must not modify the slice.
func (g *Graph) SideEntities(r RelationID, side Side) []EntityID {
	g.rebuildSideTables()
	if side == SubjectSide {
		return g.relSubjects[r]
	}
	return g.relObjects[r]
}

// SideCount returns how many triples of relation r have e on the given side.
func (g *Graph) SideCount(r RelationID, side Side, e EntityID) int64 {
	g.rebuildSideTables()
	if side == SubjectSide {
		return g.relSubjectCount[r][e]
	}
	return g.relObjectCount[r][e]
}

// FormatTriple renders t with entity and relation names.
func (g *Graph) FormatTriple(t Triple) string {
	return fmt.Sprintf("(%s, %s, %s)",
		g.Entities.Name(int32(t.S)), g.Relations.Name(int32(t.R)), g.Entities.Name(int32(t.O)))
}

// Clone returns a deep copy of the graph sharing no mutable state with g
// except the (append-only) dictionaries.
func (g *Graph) Clone() *Graph {
	c := NewGraphWithDicts(g.Entities, g.Relations)
	for _, t := range g.triples {
		c.Add(t)
	}
	return c
}

// Merge adds all triples of other (which must share dictionaries) into a new
// graph containing the union. It is used to build the "seen" filter set for
// filtered ranking (train ∪ valid ∪ test).
func Merge(graphs ...*Graph) *Graph {
	if len(graphs) == 0 {
		return NewGraph()
	}
	out := NewGraphWithDicts(graphs[0].Entities, graphs[0].Relations)
	for _, g := range graphs {
		for _, t := range g.Triples() {
			out.Add(t)
		}
	}
	return out
}
