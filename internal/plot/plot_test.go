package plot

import (
	"encoding/xml"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// assertValidSVG parses the output as XML and checks the root element.
func assertValidSVG(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	rootSeen := false
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, svg[:min(len(svg), 400)])
		}
		if se, ok := tok.(xml.StartElement); ok && !rootSeen {
			if se.Name.Local != "svg" {
				t.Fatalf("root element %q, want svg", se.Name.Local)
			}
			rootSeen = true
		}
	}
	if !rootSeen {
		t.Fatal("no root element")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBarChartRender(t *testing.T) {
	c := BarChart{
		Title:  "Figure 2 <runtime> & friends", // exercises escaping
		XLabel: "strategy",
		YLabel: "seconds",
		Groups: []string{"UR", "EF", "GD"},
		Series: []string{"transe", "distmult"},
		Values: [][]float64{{1, 2, 3}, {2, 1, 0.5}},
	}
	svg := c.Render()
	assertValidSVG(t, svg)
	if !strings.Contains(svg, "&lt;runtime&gt;") {
		t.Error("title not escaped")
	}
	if strings.Count(svg, "<rect") < 7 { // 6 bars + background + legend swatches
		t.Error("missing bars")
	}
}

func TestBarChartEmpty(t *testing.T) {
	assertValidSVG(t, BarChart{Title: "empty"}.Render())
	assertValidSVG(t, BarChart{Groups: []string{"a"}, Series: []string{"s"}, Values: [][]float64{{0}}}.Render())
}

func TestHistogramRender(t *testing.T) {
	c := Histogram{
		Title:  "Figure 3",
		XLabel: "clustering coefficient",
		YLabel: "nodes",
		Edges:  []float64{0, 0.25, 0.5, 0.75, 1},
		Counts: []int{10, 5, 3, 1},
		Mean:   0.3,
	}
	svg := c.Render()
	assertValidSVG(t, svg)
	if !strings.Contains(svg, "mean") {
		t.Error("mean marker missing")
	}
}

func TestHistogramNoMean(t *testing.T) {
	c := Histogram{
		Edges:  []float64{0, 1},
		Counts: []int{3},
		Mean:   math.NaN(),
	}
	svg := c.Render()
	assertValidSVG(t, svg)
	if strings.Contains(svg, "mean") {
		t.Error("NaN mean should suppress the marker")
	}
}

func TestHistogramMalformedEdges(t *testing.T) {
	assertValidSVG(t, Histogram{Edges: []float64{0}, Counts: []int{1, 2}, Mean: math.NaN()}.Render())
}

func TestLineChartRender(t *testing.T) {
	c := LineChart{
		Title:  "Figure 7",
		XLabel: "max_candidates",
		YLabel: "seconds",
		X:      []float64{50, 100, 200, 500},
		Series: []string{"top_n=100", "top_n=500"},
		Values: [][]float64{{1, 2, 4, 9}, {1.1, 2.2, 4.1, 9.3}},
	}
	svg := c.Render()
	assertValidSVG(t, svg)
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polyline count = %d, want 2", strings.Count(svg, "<polyline"))
	}
}

func TestLineChartEmpty(t *testing.T) {
	assertValidSVG(t, LineChart{Title: "x"}.Render())
}

func TestScatterRender(t *testing.T) {
	c := Scatter{
		Title:  "Figure 5",
		XLabel: "node",
		YLabel: "triangles",
		X:      []float64{0, 1, 2, 3},
		Y:      []float64{10, 0, 5, 2},
	}
	svg := c.Render()
	assertValidSVG(t, svg)
	if strings.Count(svg, "<circle") < 4 {
		t.Error("missing points")
	}
}

func TestScatterMismatchedInput(t *testing.T) {
	assertValidSVG(t, Scatter{X: []float64{1}, Y: []float64{1, 2}}.Render())
}

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chart.svg")
	if err := WriteFile(path, BarChart{Title: "t"}.Render()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("file missing: %v", err)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 5)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Errorf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate range ticks = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{{0, "0"}, {1500000, "1.5e+06"}, {250, "250"}, {1.5, "1.5"}, {0.25, "0.25"}} {
		if got := formatTick(tc.v); got != tc.want {
			t.Errorf("formatTick(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestColorCycles(t *testing.T) {
	if Color(0) == "" || Color(0) != Color(len(palette)) {
		t.Error("palette does not cycle")
	}
}
