// Package plot renders the repository's experiment results as standalone
// SVG figures using only the standard library. It supports the three chart
// shapes the paper's evaluation section uses: grouped bar charts
// (Figures 2, 4, 6), histograms (Figure 3), scatter/series-by-index plots
// (Figure 5) and multi-series line charts (Figures 7–10).
//
// The implementation favours predictability over generality: fixed margins,
// a small qualitative palette, linear axes with "nice" tick steps, and
// deterministic output (no randomness, no timestamps) so figures are
// byte-identical across runs.
package plot

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Size and layout constants shared by all charts.
const (
	defaultWidth  = 640
	defaultHeight = 400

	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 70
)

// palette is a small colour-blind-friendly qualitative palette.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

// Color returns the i-th palette colour (cycled).
func Color(i int) string { return palette[i%len(palette)] }

// svgBuilder accumulates SVG elements.
type svgBuilder struct {
	w, h int
	b    strings.Builder
}

func newSVG(w, h int) *svgBuilder {
	if w <= 0 {
		w = defaultWidth
	}
	if h <= 0 {
		h = defaultHeight
	}
	s := &svgBuilder{w: w, h: h}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica,Arial,sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&s.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return s
}

func (s *svgBuilder) finish() string {
	s.b.WriteString("</svg>\n")
	return s.b.String()
}

func (s *svgBuilder) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&s.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (s *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n", x1, y1, x2, y2, stroke, width)
}

func (s *svgBuilder) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&s.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", x, y, r, fill)
}

func (s *svgBuilder) polyline(points []point, stroke string, width float64) {
	if len(points) == 0 {
		return
	}
	var sb strings.Builder
	for i, p := range points {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.2f,%.2f", p.x, p.y)
	}
	fmt.Fprintf(&s.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n", sb.String(), stroke, width)
}

// text emits escaped text. anchor: start, middle, end.
func (s *svgBuilder) text(x, y float64, size int, anchor, content string) {
	fmt.Fprintf(&s.b, `<text x="%.2f" y="%.2f" font-size="%d" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(content))
}

// textRotated emits text rotated by deg around its anchor point.
func (s *svgBuilder) textRotated(x, y float64, size int, anchor string, deg float64, content string) {
	fmt.Fprintf(&s.b, `<text x="%.2f" y="%.2f" font-size="%d" text-anchor="%s" transform="rotate(%.1f %.2f %.2f)">%s</text>`+"\n",
		x, y, size, anchor, deg, x, y, escape(content))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

type point struct{ x, y float64 }

// axis maps data values to pixel coordinates.
type axis struct {
	min, max float64
	lo, hi   float64 // pixel range
}

func (a axis) scale(v float64) float64 {
	if a.max == a.min {
		return (a.lo + a.hi) / 2
	}
	return a.lo + (v-a.min)/(a.max-a.min)*(a.hi-a.lo)
}

// niceTicks returns ~n round tick values spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
		if span/step <= float64(n)*2 {
			break
		}
		step *= 2.5
	}
	for span/step < float64(n)/2 {
		step /= 2
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	}
}

// drawFrame draws the title, plot frame, y grid/ticks and axis labels, and
// returns the configured y-axis.
func drawFrame(s *svgBuilder, title, xlabel, ylabel string, yMin, yMax float64) axis {
	plotBottom := float64(s.h - marginBottom)
	plotTop := float64(marginTop)
	y := axis{min: yMin, max: yMax, lo: plotBottom, hi: plotTop}

	s.text(float64(s.w)/2, 22, 14, "middle", title)
	s.text(float64(s.w)/2, float64(s.h)-12, 12, "middle", xlabel)
	s.textRotated(16, float64(s.h)/2, 12, "middle", -90, ylabel)

	for _, tv := range niceTicks(yMin, yMax, 5) {
		py := y.scale(tv)
		s.line(marginLeft, py, float64(s.w-marginRight), py, "#e0e0e0", 1)
		s.text(marginLeft-6, py+4, 10, "end", formatTick(tv))
	}
	// Frame axes on top of the grid.
	s.line(marginLeft, plotTop, marginLeft, plotBottom, "#333333", 1.5)
	s.line(marginLeft, plotBottom, float64(s.w-marginRight), plotBottom, "#333333", 1.5)
	return y
}

// drawLegend renders a simple swatch legend in the top-right corner.
func drawLegend(s *svgBuilder, names []string) {
	x := float64(s.w - marginRight - 150)
	yPos := float64(marginTop + 4)
	for i, name := range names {
		s.rect(x, yPos-8, 10, 10, Color(i))
		s.text(x+14, yPos+1, 10, "start", name)
		yPos += 14
	}
}

// WriteFile renders chart content (from one of the Render* functions) to a
// file.
func WriteFile(path, svg string) error {
	return os.WriteFile(path, []byte(svg), 0o644)
}
