package plot

import "math"

// BarChart is a grouped bar chart: one group per x-axis category, one bar
// per series within each group — the shape of the paper's Figures 2, 4, 6
// (groups = strategies, series = models).
type BarChart struct {
	Title  string
	XLabel string
	YLabel string
	Groups []string    // x-axis categories
	Series []string    // legend entries
	Values [][]float64 // Values[series][group]
	Width  int
	Height int
}

// Render returns the chart as an SVG document.
func (c BarChart) Render() string {
	s := newSVG(c.Width, c.Height)
	maxV := 0.0
	for _, row := range c.Values {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	y := drawFrame(s, c.Title, c.XLabel, c.YLabel, 0, maxV*1.05)

	plotWidth := float64(s.w - marginLeft - marginRight)
	plotBottom := float64(s.h - marginBottom)
	nGroups := len(c.Groups)
	nSeries := len(c.Series)
	if nGroups == 0 || nSeries == 0 {
		return s.finish()
	}
	groupWidth := plotWidth / float64(nGroups)
	barWidth := groupWidth * 0.8 / float64(nSeries)

	for gi, group := range c.Groups {
		gx := marginLeft + float64(gi)*groupWidth
		for si := range c.Series {
			if gi >= len(c.Values[si]) {
				continue
			}
			v := c.Values[si][gi]
			bx := gx + groupWidth*0.1 + float64(si)*barWidth
			by := y.scale(v)
			s.rect(bx, by, barWidth, plotBottom-by, Color(si))
		}
		s.textRotated(gx+groupWidth/2, plotBottom+14, 10, "end", -30, group)
	}
	drawLegend(s, c.Series)
	return s.finish()
}

// Histogram renders binned counts — the paper's Figure 3 shape — with an
// optional vertical mean marker (the figure's red line).
type Histogram struct {
	Title  string
	XLabel string
	YLabel string
	Edges  []float64 // len = len(Counts)+1
	Counts []int
	Mean   float64 // vertical marker; NaN disables it
	Width  int
	Height int
}

// Render returns the chart as an SVG document.
func (c Histogram) Render() string {
	s := newSVG(c.Width, c.Height)
	maxC := 0
	for _, v := range c.Counts {
		if v > maxC {
			maxC = v
		}
	}
	if maxC == 0 {
		maxC = 1
	}
	y := drawFrame(s, c.Title, c.XLabel, c.YLabel, 0, float64(maxC)*1.05)
	if len(c.Counts) == 0 || len(c.Edges) != len(c.Counts)+1 {
		return s.finish()
	}
	x := axis{min: c.Edges[0], max: c.Edges[len(c.Edges)-1],
		lo: marginLeft, hi: float64(s.w - marginRight)}
	plotBottom := float64(s.h - marginBottom)

	for i, count := range c.Counts {
		x0 := x.scale(c.Edges[i])
		x1 := x.scale(c.Edges[i+1])
		by := y.scale(float64(count))
		s.rect(x0, by, math.Max(x1-x0-1, 0.5), plotBottom-by, Color(0))
	}
	for _, tv := range niceTicks(x.min, x.max, 6) {
		px := x.scale(tv)
		s.text(px, plotBottom+14, 10, "middle", formatTick(tv))
	}
	if !math.IsNaN(c.Mean) {
		px := x.scale(c.Mean)
		s.line(px, float64(marginTop), px, plotBottom, "#cc0000", 2)
		s.text(px+4, float64(marginTop)+12, 10, "start", "mean "+formatTick(c.Mean))
	}
	return s.finish()
}

// LineChart renders one or more series over a shared numeric x axis — the
// shape of the paper's Figures 7–10 (x = max_candidates or top_n, one line
// per hyperparameter value).
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []string
	Values [][]float64 // Values[series][i] pairs with X[i]
	Width  int
	Height int
}

// Render returns the chart as an SVG document.
func (c LineChart) Render() string {
	s := newSVG(c.Width, c.Height)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range c.Values {
		for _, v := range row {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	if math.IsInf(minV, 1) {
		minV, maxV = 0, 1
	}
	if minV > 0 {
		minV = 0 // anchor at zero for honest visual comparison
	}
	y := drawFrame(s, c.Title, c.XLabel, c.YLabel, minV, maxV*1.05)
	if len(c.X) == 0 {
		return s.finish()
	}
	x := axis{min: c.X[0], max: c.X[len(c.X)-1], lo: marginLeft, hi: float64(s.w - marginRight)}
	plotBottom := float64(s.h - marginBottom)
	for _, tv := range niceTicks(x.min, x.max, 6) {
		px := x.scale(tv)
		s.text(px, plotBottom+14, 10, "middle", formatTick(tv))
	}
	for si, row := range c.Values {
		pts := make([]point, 0, len(row))
		for i, v := range row {
			if i >= len(c.X) {
				break
			}
			pts = append(pts, point{x.scale(c.X[i]), y.scale(v)})
		}
		s.polyline(pts, Color(si), 2)
		for _, p := range pts {
			s.circle(p.x, p.y, 2.5, Color(si))
		}
	}
	drawLegend(s, c.Series)
	return s.finish()
}

// Scatter renders (x, y) points — the paper's Figure 5 shape (node index
// vs statistic).
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
	Width  int
	Height int
}

// Render returns the chart as an SVG document.
func (c Scatter) Render() string {
	s := newSVG(c.Width, c.Height)
	if len(c.X) == 0 || len(c.X) != len(c.Y) {
		drawFrame(s, c.Title, c.XLabel, c.YLabel, 0, 1)
		return s.finish()
	}
	minY, maxY := c.Y[0], c.Y[0]
	minX, maxX := c.X[0], c.X[0]
	for i := range c.X {
		minX = math.Min(minX, c.X[i])
		maxX = math.Max(maxX, c.X[i])
		minY = math.Min(minY, c.Y[i])
		maxY = math.Max(maxY, c.Y[i])
	}
	if maxY == minY {
		maxY = minY + 1
	}
	y := drawFrame(s, c.Title, c.XLabel, c.YLabel, minY, maxY*1.05)
	x := axis{min: minX, max: maxX, lo: marginLeft, hi: float64(s.w - marginRight)}
	plotBottom := float64(s.h - marginBottom)
	for _, tv := range niceTicks(x.min, x.max, 6) {
		px := x.scale(tv)
		s.text(px, plotBottom+14, 10, "middle", formatTick(tv))
	}
	for i := range c.X {
		s.circle(x.scale(c.X[i]), y.scale(c.Y[i]), 1.5, Color(0))
	}
	return s.finish()
}
