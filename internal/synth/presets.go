package synth

// The presets below stand in for the paper's four benchmarks (Table 1). The
// paper's relation counts are kept exactly — runtime of the discovery
// algorithm scales with the number of relations, which is central to
// Figure 2's story — while entity and triple counts are divided by `scale`
// (≥ 1). Triples-per-entity density ratios and the clustering-coefficient
// ordering (FB15K-237 densest, WN18RR sparsest) follow the paper's Figure 3.
//
// Paper Table 1 reference:
//
//	FB15K-237:  272,115 train  14,541 entities  237 relations  (dense)
//	WN18RR:      86,835 train  40,943 entities   11 relations  (sparse)
//	YAGO3-10: 1,079,040 train 123,182 entities   37 relations  (largest)
//	CoDEx-L:    550,800 train  77,951 entities   69 relations  (mid)

func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	return scale
}

// FB15K237Sim mirrors FB15K-237 at 1/scale size: the densest dataset with by
// far the most relations and the highest clustering coefficients.
func FB15K237Sim(scale int) Config {
	scale = clampScale(scale)
	return Config{
		Name:         "fb15k237-sim",
		NumEntities:  max2(14541/scale, 60),
		NumRelations: 237,
		NumTriples:   max2(310079/scale, 3000), // train+valid+test
		NumTypes:     12,
		EntityZipf:   1.0,
		RelationZipf: 0.9,
		ClosureProb:  0.38,
		NoiseProb:    0.05,
		ValidFrac:    0.0565, // 17,535 / 310,079
		TestFrac:     0.0659, // 20,429 / 310,079
		Seed:         237,
	}
}

// WN18RRSim mirrors WN18RR at 1/scale size: very sparse (≈2.3 triples per
// entity), only 11 relations, lowest clustering coefficients.
func WN18RRSim(scale int) Config {
	scale = clampScale(scale)
	return Config{
		Name:         "wn18rr-sim",
		NumEntities:  max2(40943/scale, 120),
		NumRelations: 11,
		NumTriples:   max2(93003/scale, 1200),
		NumTypes:     10,
		EntityZipf:   0.6, // lexical graphs are less head-heavy
		RelationZipf: 0.8,
		ClosureProb:  0.02,
		NoiseProb:    0.05,
		ValidFrac:    0.0326,
		TestFrac:     0.0337,
		Seed:         18,
	}
}

// YAGO310Sim mirrors YAGO3-10 at 1/scale size: the largest dataset, moderate
// density (every entity has ≥ 10 relations in the original), 37 relations.
func YAGO310Sim(scale int) Config {
	scale = clampScale(scale)
	return Config{
		Name:         "yago310-sim",
		NumEntities:  max2(123182/scale, 200),
		NumRelations: 37,
		NumTriples:   max2(1089040/scale, 4000),
		NumTypes:     10,
		EntityZipf:   1.1,
		RelationZipf: 1.0,
		ClosureProb:  0.16,
		NoiseProb:    0.05,
		ValidFrac:    0.0046,
		TestFrac:     0.0046,
		Seed:         310,
	}
}

// CoDExLSim mirrors CoDEx-L at 1/scale size: mid-sized, 69 relations, 90:5:5
// split with no unseen entities in valid/test.
func CoDExLSim(scale int) Config {
	scale = clampScale(scale)
	return Config{
		Name:         "codexl-sim",
		NumEntities:  max2(77951/scale, 150),
		NumRelations: 69,
		NumTriples:   max2(612000/scale, 3500),
		NumTypes:     10,
		EntityZipf:   1.0,
		RelationZipf: 0.9,
		ClosureProb:  0.13,
		NoiseProb:    0.05,
		ValidFrac:    0.05,
		TestFrac:     0.05,
		Seed:         612,
	}
}

// Tiny is a minimal well-formed dataset for unit and integration tests.
func Tiny() Config {
	return Config{
		Name:         "tiny",
		NumEntities:  80,
		NumRelations: 6,
		NumTriples:   600,
		NumTypes:     4,
		EntityZipf:   1.0,
		RelationZipf: 0.8,
		ClosureProb:  0.25,
		NoiseProb:    0.05,
		ValidFrac:    0.05,
		TestFrac:     0.05,
		Seed:         7,
	}
}

// AllPresets returns the four paper-dataset presets at the given scale, in
// the order the paper lists them.
func AllPresets(scale int) []Config {
	return []Config{
		FB15K237Sim(scale),
		WN18RRSim(scale),
		YAGO310Sim(scale),
		CoDExLSim(scale),
	}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
