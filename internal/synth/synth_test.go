package synth

import (
	"testing"

	"repro/internal/graphstats"
	"repro/internal/kg"
)

func TestGenerateGraphMeetsTargets(t *testing.T) {
	cfg := Tiny()
	g, err := GenerateGraph(cfg)
	if err != nil {
		t.Fatalf("GenerateGraph: %v", err)
	}
	if g.Len() != cfg.NumTriples {
		t.Errorf("triples = %d, want %d", g.Len(), cfg.NumTriples)
	}
	if g.NumEntities() != cfg.NumEntities {
		t.Errorf("entities = %d, want %d", g.NumEntities(), cfg.NumEntities)
	}
	if g.NumRelations() != cfg.NumRelations {
		t.Errorf("relations = %d, want %d", g.NumRelations(), cfg.NumRelations)
	}
}

func TestGenerateGraphCoversEveryEntity(t *testing.T) {
	g, err := GenerateGraph(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < g.NumEntities(); e++ {
		if g.Degree(kg.EntityID(e)) == 0 {
			t.Errorf("entity %d is isolated", e)
		}
	}
}

func TestGenerateGraphNoSelfLoops(t *testing.T) {
	g, err := GenerateGraph(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range g.Triples() {
		if tr.S == tr.O {
			t.Fatalf("self-loop generated: %v", tr)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateGraph(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateGraph(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", a.Len(), b.Len())
	}
	for _, tr := range a.Triples() {
		if !b.Contains(tr) {
			t.Fatalf("same config+seed produced different graphs")
		}
	}
}

func TestGenerateSplitsShareDicts(t *testing.T) {
	ds, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Train.Entities != ds.Valid.Entities || ds.Train.Entities != ds.Test.Entities {
		t.Error("splits do not share the entity dictionary")
	}
	if ds.Valid.Len() == 0 || ds.Test.Len() == 0 {
		t.Errorf("degenerate splits: valid=%d test=%d", ds.Valid.Len(), ds.Test.Len())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Tiny()
	for _, mutate := range []func(*Config){
		func(c *Config) { c.NumEntities = 1 },
		func(c *Config) { c.NumRelations = 0 },
		func(c *Config) { c.NumTriples = 10 }, // < entities/2
		func(c *Config) { c.NumTypes = 0 },
		func(c *Config) { c.ClosureProb = 1.5 },
		func(c *Config) { c.NoiseProb = -0.1 },
	} {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("Validate rejected the tiny preset: %v", err)
	}
}

func TestClosureProbabilityRaisesClustering(t *testing.T) {
	lo := Tiny()
	lo.ClosureProb = 0.0
	lo.Seed = 99
	hi := Tiny()
	hi.ClosureProb = 0.5
	hi.Seed = 99

	gLo, err := GenerateGraph(lo)
	if err != nil {
		t.Fatal(err)
	}
	gHi, err := GenerateGraph(hi)
	if err != nil {
		t.Fatal(err)
	}
	cLo := graphstats.Mean(graphstats.BuildUndirected(gLo).LocalClustering(nil))
	cHi := graphstats.Mean(graphstats.BuildUndirected(gHi).LocalClustering(nil))
	if cHi <= cLo {
		t.Errorf("closure prob did not raise clustering: %.4f (0.0) vs %.4f (0.5)", cLo, cHi)
	}
}

func TestPopularitySkew(t *testing.T) {
	// With Zipf 1.0 popularity, the top decile of entities should carry a
	// disproportionate share of the degree mass.
	g, err := GenerateGraph(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	degrees := make([]int64, g.NumEntities())
	var total int64
	for e := range degrees {
		degrees[e] = g.Degree(kg.EntityID(e))
		total += degrees[e]
	}
	// Sort descending.
	for i := 0; i < len(degrees); i++ {
		for j := i + 1; j < len(degrees); j++ {
			if degrees[j] > degrees[i] {
				degrees[i], degrees[j] = degrees[j], degrees[i]
			}
		}
	}
	top := len(degrees) / 10
	var topMass int64
	for _, d := range degrees[:top] {
		topMass += d
	}
	if share := float64(topMass) / float64(total); share < 0.2 {
		t.Errorf("top 10%% of entities hold only %.1f%% of degree mass; expected a popularity head", share*100)
	}
}

func TestPresetsMatchPaperShapes(t *testing.T) {
	const scale = 100
	fb := FB15K237Sim(scale)
	wn := WN18RRSim(scale)
	yago := YAGO310Sim(scale)
	codex := CoDExLSim(scale)

	// Relation counts are the paper's, exactly.
	if fb.NumRelations != 237 || wn.NumRelations != 11 || yago.NumRelations != 37 || codex.NumRelations != 69 {
		t.Errorf("relation counts drifted: %d %d %d %d",
			fb.NumRelations, wn.NumRelations, yago.NumRelations, codex.NumRelations)
	}
	// Density ordering: FB dense, WN sparse.
	density := func(c Config) float64 { return float64(c.NumTriples) / float64(c.NumEntities) }
	if !(density(fb) > density(yago) && density(yago) > density(wn)) {
		t.Errorf("density ordering broken: fb=%.1f yago=%.1f wn=%.1f",
			density(fb), density(yago), density(wn))
	}
	// YAGO is the largest by triples at equal scale.
	if !(yago.NumTriples > codex.NumTriples && codex.NumTriples > fb.NumTriples && fb.NumTriples > wn.NumTriples) {
		t.Errorf("size ordering broken: yago=%d codex=%d fb=%d wn=%d",
			yago.NumTriples, codex.NumTriples, fb.NumTriples, wn.NumTriples)
	}
	// Clustering knob ordering drives Figure 3: FB highest, WN lowest.
	if !(fb.ClosureProb > yago.ClosureProb && yago.ClosureProb > codex.ClosureProb && codex.ClosureProb > wn.ClosureProb) {
		t.Errorf("closure ordering broken")
	}
}

func TestPresetsGenerateAtTestScale(t *testing.T) {
	for _, cfg := range AllPresets(400) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			ds, err := Generate(cfg)
			if err != nil {
				t.Fatalf("Generate(%s): %v", cfg.Name, err)
			}
			if ds.Train.Len() == 0 || ds.Valid.Len() == 0 || ds.Test.Len() == 0 {
				t.Errorf("%s: empty split: %v", cfg.Name, ds.Metadata())
			}
		})
	}
}

func TestScaleClamped(t *testing.T) {
	cfg := FB15K237Sim(0) // clamped to 1 → full size targets
	if cfg.NumEntities != 14541 {
		t.Errorf("scale 0 should clamp to 1: entities = %d", cfg.NumEntities)
	}
	neg := WN18RRSim(-5)
	if neg.NumEntities != 40943 {
		t.Errorf("negative scale should clamp to 1: entities = %d", neg.NumEntities)
	}
}

func TestClusteringOrderingAcrossPresets(t *testing.T) {
	// The generated datasets must reproduce Figure 3's ordering: FB15K-237
	// has the highest average clustering coefficient, WN18RR the lowest.
	means := make(map[string]float64)
	for _, cfg := range AllPresets(200) {
		g, err := GenerateGraph(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		u := graphstats.BuildUndirected(g)
		means[cfg.Name] = graphstats.Mean(u.LocalClustering(nil))
	}
	t.Logf("clustering means: %v", means)
	if !(means["fb15k237-sim"] > means["yago310-sim"]) {
		t.Errorf("fb (%.4f) should exceed yago (%.4f)", means["fb15k237-sim"], means["yago310-sim"])
	}
	if !(means["yago310-sim"] > means["wn18rr-sim"]) {
		t.Errorf("yago (%.4f) should exceed wn (%.4f)", means["yago310-sim"], means["wn18rr-sim"])
	}
	if !(means["codexl-sim"] > means["wn18rr-sim"]) {
		t.Errorf("codex (%.4f) should exceed wn (%.4f)", means["codexl-sim"], means["wn18rr-sim"])
	}
}
