// Package synth generates deterministic synthetic knowledge graphs that
// stand in for the paper's four benchmark datasets (FB15K-237, WN18RR,
// YAGO3-10, CoDEx-L), which cannot be downloaded in this offline build.
//
// The generator is designed so that the *shape* properties the paper's
// findings depend on are controllable and match each dataset:
//
//   - scale: entity / relation / triple counts (presets keep the paper's
//     relation counts exactly and scale entities/triples down),
//   - density: triples-per-entity ratio (FB15K-237 ≈ 19, WN18RR ≈ 2.1,
//     YAGO3-10 ≈ 8.8, CoDEx-L ≈ 7.1),
//   - popularity skew: Zipf-distributed entity usage, so ENTITY FREQUENCY /
//     GRAPH DEGREE sampling has a head to exploit and a long tail to avoid,
//   - clustering: a triadic-closure probability that controls the local
//     clustering coefficient profile (Figure 3's dataset ordering),
//   - learnability: entities carry latent types and relations carry
//     (domain, range) type signatures, so KGE models can learn real
//     structure and their rankings are meaningful rather than noise.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kg"
	"repro/internal/sample"
)

// Config parameterizes one synthetic knowledge graph.
type Config struct {
	// Name labels the dataset (reports, file names).
	Name string
	// NumEntities, NumRelations and NumTriples set the target sizes. Every
	// entity is guaranteed to occur in at least one triple, so NumTriples
	// must be >= NumEntities/2 to be reachable.
	NumEntities  int
	NumRelations int
	NumTriples   int
	// NumTypes is the number of latent entity types (clusters). Relations
	// connect one domain type to one range type.
	NumTypes int
	// EntityZipf is the Zipf exponent of within-type entity popularity
	// (0 = uniform; ≈1 = realistic head-heavy skew).
	EntityZipf float64
	// RelationZipf is the Zipf exponent of relation frequency.
	RelationZipf float64
	// ClosureProb is the probability that a new triple is created by triadic
	// closure (connecting two neighbours of an existing node), which raises
	// the local clustering coefficients.
	ClosureProb float64
	// NoiseProb is the probability that a non-closure triple ignores type
	// signatures entirely (uniform random endpoints).
	NoiseProb float64
	// ValidFrac and TestFrac control the split (see kg.Split); the split
	// always enforces the no-unseen-entities property.
	ValidFrac float64
	TestFrac  float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports the first problem with the configuration, if any.
func (c Config) Validate() error {
	switch {
	case c.NumEntities < 2:
		return fmt.Errorf("synth: need at least 2 entities, got %d", c.NumEntities)
	case c.NumRelations < 1:
		return fmt.Errorf("synth: need at least 1 relation, got %d", c.NumRelations)
	case c.NumTriples < c.NumEntities/2:
		return fmt.Errorf("synth: %d triples cannot cover %d entities", c.NumTriples, c.NumEntities)
	case c.NumTypes < 1:
		return fmt.Errorf("synth: need at least 1 type, got %d", c.NumTypes)
	case c.ClosureProb < 0 || c.ClosureProb > 1:
		return fmt.Errorf("synth: ClosureProb %g outside [0,1]", c.ClosureProb)
	case c.NoiseProb < 0 || c.NoiseProb > 1:
		return fmt.Errorf("synth: NoiseProb %g outside [0,1]", c.NoiseProb)
	}
	return nil
}

// GenerateGraph builds the full synthetic graph (before splitting).
func GenerateGraph(cfg Config) (*kg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := kg.NewGraph()

	// Intern all vocabulary up front so IDs are dense and counts exact.
	for i := 0; i < cfg.NumEntities; i++ {
		g.Entities.Intern(fmt.Sprintf("e%d", i))
	}
	for i := 0; i < cfg.NumRelations; i++ {
		g.Relations.Intern(fmt.Sprintf("r%d", i))
	}

	w := newWorld(cfg, rng)

	// Phase 1 — coverage: connect every entity at least once, pairing each
	// entity with a popular partner through a type-compatible relation.
	order := rng.Perm(cfg.NumEntities)
	for _, ei := range order {
		if g.Len() >= cfg.NumTriples {
			break
		}
		e := kg.EntityID(ei)
		if g.Degree(e) > 0 {
			continue
		}
		w.addCoverageTriple(g, e, rng)
	}

	// Phase 2 — bulk generation: mixture of type-guided popularity sampling
	// and triadic closure, up to the triple budget.
	maxAttempts := 40 * cfg.NumTriples
	for attempt := 0; g.Len() < cfg.NumTriples && attempt < maxAttempts; attempt++ {
		var t kg.Triple
		var ok bool
		if rng.Float64() < cfg.ClosureProb {
			t, ok = w.closureTriple(g, rng)
		}
		if !ok {
			t, ok = w.typedTriple(rng)
		}
		if !ok || t.S == t.O {
			continue
		}
		g.Add(t)
	}
	if g.Len() < cfg.NumTriples {
		return nil, fmt.Errorf("synth: exhausted attempts at %d/%d triples (graph too constrained)", g.Len(), cfg.NumTriples)
	}
	return g, nil
}

// Generate builds the graph and splits it into a Dataset with the
// no-unseen-entities guarantee.
func Generate(cfg Config) (*kg.Dataset, error) {
	g, err := GenerateGraph(cfg)
	if err != nil {
		return nil, err
	}
	return kg.Split(cfg.Name, g, kg.SplitOptions{
		ValidFrac: cfg.ValidFrac,
		TestFrac:  cfg.TestFrac,
		Seed:      cfg.Seed + 1,
		NoUnseen:  true,
	})
}

// world holds the sampling machinery derived from a Config.
type world struct {
	cfg Config

	entType []int                      // entity -> latent type
	byType  [][]kg.EntityID            // type -> entities, popularity-ranked
	entSamp []*sample.Alias            // type -> within-type popularity sampler
	relDom  []int                      // relation -> domain type
	relRng  []int                      // relation -> range type
	relByDR map[[2]int][]kg.RelationID // (domain,range) -> relations
	relSamp *sample.Alias

	adj [][]kg.EntityID // growing undirected adjacency for closure moves
}

func newWorld(cfg Config, rng *rand.Rand) *world {
	w := &world{
		cfg:     cfg,
		entType: make([]int, cfg.NumEntities),
		byType:  make([][]kg.EntityID, cfg.NumTypes),
		relDom:  make([]int, cfg.NumRelations),
		relRng:  make([]int, cfg.NumRelations),
		relByDR: make(map[[2]int][]kg.RelationID),
		adj:     make([][]kg.EntityID, cfg.NumEntities),
	}
	for e := 0; e < cfg.NumEntities; e++ {
		t := rng.Intn(cfg.NumTypes)
		w.entType[e] = t
		w.byType[t] = append(w.byType[t], kg.EntityID(e))
	}
	// Guarantee every type has at least two entities (steal from the
	// largest type) so every relation signature is satisfiable.
	for t := 0; t < cfg.NumTypes; t++ {
		for len(w.byType[t]) < 2 {
			big := 0
			for u := range w.byType {
				if len(w.byType[u]) > len(w.byType[big]) {
					big = u
				}
			}
			if big == t || len(w.byType[big]) <= 2 {
				break
			}
			e := w.byType[big][len(w.byType[big])-1]
			w.byType[big] = w.byType[big][:len(w.byType[big])-1]
			w.byType[t] = append(w.byType[t], e)
			w.entType[e] = t
		}
	}
	w.entSamp = make([]*sample.Alias, cfg.NumTypes)
	for t := 0; t < cfg.NumTypes; t++ {
		weights := zipfWeights(len(w.byType[t]), cfg.EntityZipf)
		a, err := sample.NewAlias(weights)
		if err != nil {
			panic(fmt.Sprintf("synth: internal: %v", err))
		}
		w.entSamp[t] = a
	}
	for r := 0; r < cfg.NumRelations; r++ {
		d, rr := rng.Intn(cfg.NumTypes), rng.Intn(cfg.NumTypes)
		w.relDom[r], w.relRng[r] = d, rr
		key := [2]int{d, rr}
		w.relByDR[key] = append(w.relByDR[key], kg.RelationID(r))
	}
	relWeights := zipfWeights(cfg.NumRelations, cfg.RelationZipf)
	a, err := sample.NewAlias(relWeights)
	if err != nil {
		panic(fmt.Sprintf("synth: internal: %v", err))
	}
	w.relSamp = a
	return w
}

// zipfWeights returns w_i = 1/(i+1)^s for i in [0, n).
func zipfWeights(n int, s float64) []float64 {
	if n == 0 {
		return []float64{1} // avoid empty sampler; callers guarantee n >= 1
	}
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = 1 / math.Pow(float64(i+1), s)
	}
	return ws
}

func (w *world) note(t kg.Triple) {
	w.adj[t.S] = append(w.adj[t.S], t.O)
	w.adj[t.O] = append(w.adj[t.O], t.S)
}

// drawEntity samples an entity of type t by within-type popularity.
func (w *world) drawEntity(t int, rng *rand.Rand) kg.EntityID {
	return w.byType[t][w.entSamp[t].Draw(rng)]
}

// typedTriple draws a relation then type-compatible (or noisy) endpoints.
func (w *world) typedTriple(rng *rand.Rand) (kg.Triple, bool) {
	r := kg.RelationID(w.relSamp.Draw(rng))
	var s, o kg.EntityID
	if rng.Float64() < w.cfg.NoiseProb {
		s = kg.EntityID(rng.Intn(w.cfg.NumEntities))
		o = kg.EntityID(rng.Intn(w.cfg.NumEntities))
	} else {
		s = w.drawEntity(w.relDom[r], rng)
		o = w.drawEntity(w.relRng[r], rng)
	}
	if s == o {
		return kg.Triple{}, false
	}
	t := kg.Triple{S: s, R: r, O: o}
	w.note(t)
	return t, true
}

// closureTriple picks a random wedge a–b–c in the growing graph and closes
// it with a type-compatible relation, creating a triangle.
func (w *world) closureTriple(g *kg.Graph, rng *rand.Rand) (kg.Triple, bool) {
	if g.Len() == 0 {
		return kg.Triple{}, false
	}
	base := g.Triples()[rng.Intn(g.Len())]
	mid := base.O
	nbs := w.adj[mid]
	if len(nbs) < 2 {
		return kg.Triple{}, false
	}
	a := base.S
	c := nbs[rng.Intn(len(nbs))]
	if c == a || c == mid {
		return kg.Triple{}, false
	}
	r, ok := w.compatibleRelation(a, c, rng)
	if !ok {
		return kg.Triple{}, false
	}
	t := kg.Triple{S: a, R: r, O: c}
	w.note(t)
	return t, true
}

// compatibleRelation returns a relation whose (domain, range) signature
// matches the types of (s, o), falling back to the reverse orientation and
// then to any relation.
func (w *world) compatibleRelation(s, o kg.EntityID, rng *rand.Rand) (kg.RelationID, bool) {
	if rels, ok := w.relByDR[[2]int{w.entType[s], w.entType[o]}]; ok && len(rels) > 0 {
		return rels[rng.Intn(len(rels))], true
	}
	if rels, ok := w.relByDR[[2]int{w.entType[o], w.entType[s]}]; ok && len(rels) > 0 {
		// Reverse orientation also forms a triangle in the undirected view.
		return rels[rng.Intn(len(rels))], true
	}
	return kg.RelationID(w.relSamp.Draw(rng)), true
}

// addCoverageTriple connects entity e to a popular partner via a relation
// compatible with e's type, guaranteeing e occurs in the graph.
func (w *world) addCoverageTriple(g *kg.Graph, e kg.EntityID, rng *rand.Rand) {
	et := w.entType[e]
	for attempt := 0; attempt < 64; attempt++ {
		r := kg.RelationID(w.relSamp.Draw(rng))
		var t kg.Triple
		switch {
		case w.relDom[r] == et:
			o := w.drawEntity(w.relRng[r], rng)
			t = kg.Triple{S: e, R: r, O: o}
		case w.relRng[r] == et:
			s := w.drawEntity(w.relDom[r], rng)
			t = kg.Triple{S: s, R: r, O: e}
		default:
			continue
		}
		if t.S == t.O {
			continue
		}
		if g.Add(t) {
			w.note(t)
			return
		}
	}
	// Fall back: connect to any other entity with any relation.
	for {
		o := kg.EntityID(rng.Intn(w.cfg.NumEntities))
		if o == e {
			continue
		}
		r := kg.RelationID(w.relSamp.Draw(rng))
		t := kg.Triple{S: e, R: r, O: o}
		if g.Add(t) {
			w.note(t)
			return
		}
	}
}
