// Package prof wires the standard runtime/pprof profilers into the CLI
// tools: kgtrain and kgdiscover take -cpuprofile/-memprofile flags so a
// perf regression can be pinned to a kernel without rebuilding anything
// (kgserve exposes the same data over HTTP via net/http/pprof instead).
package prof

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Do runs fn with the pprof label train_phase=phase attached, so CPU
// profiles of the trainer split cleanly by hot-path phase (e.g.
// "kvsall/batched" vs "negsample/scalar") instead of lumping every kernel
// under the worker goroutine. Outside profiling the label costs nothing
// measurable per chunk-worker invocation.
func Do(phase string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("train_phase", phase), func(context.Context) {
		fn()
	})
}

// Start begins profiling as requested and returns a stop function that must
// run at process exit (before results are reported as final). A non-empty
// cpuPath starts CPU profiling immediately; a non-empty memPath writes a
// heap profile — after a forced GC, so the numbers reflect live memory, not
// collection timing — when the stop function runs. Either path may be empty;
// with both empty the returned stop is a no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: create mem profile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: write mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: close mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
