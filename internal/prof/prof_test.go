package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "c.prof"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
