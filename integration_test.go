package repro

// End-to-end integration tests: the full pipeline a user of this library
// runs — generate a dataset, train a model, evaluate it, calibrate it,
// discover facts with a sampling strategy, cross-check against the
// exhaustive baseline, score the discoveries with the recovery protocol,
// and round-trip the model through a checkpoint — plus the distributed
// path: the same sweep through real kgfleet coordinator and worker
// processes, byte-identical to the in-process run.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline")
	}
	ctx := context.Background()

	// 1. Dataset.
	ds, err := synth.Generate(synth.Config{
		Name:         "e2e",
		NumEntities:  120,
		NumRelations: 5,
		NumTriples:   1200,
		NumTypes:     4,
		EntityZipf:   1.0,
		RelationZipf: 0.8,
		ClosureProb:  0.2,
		NoiseProb:    0.05,
		ValidFrac:    0.05,
		TestFrac:     0.05,
		Seed:         77,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	// 2. Train with early stopping on validation MRR.
	model, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          24,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	filter := ds.All()
	hist, err := train.Run(ctx, model, ds, train.Config{
		Epochs:     40,
		BatchSize:  128,
		NegSamples: 4,
		Seed:       2,
		EvalEvery:  5,
		Patience:   4,
		Validate: func(m kge.Model) float64 {
			return eval.Evaluate(eval.NewRanker(m, filter), ds.Valid, eval.Options{MaxTriples: 60}).MRR
		},
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if len(hist.Epochs) == 0 {
		t.Fatal("no training epochs")
	}

	// 3. Evaluate link prediction; must beat random guessing clearly.
	res := eval.Evaluate(eval.NewRanker(model, filter), ds.Test, eval.Options{})
	nEnt := float64(ds.Train.Entities.Len())
	randomMRR := 0.0
	for i := 1.0; i <= nEnt; i++ {
		randomMRR += 1 / i
	}
	randomMRR /= nEnt
	if res.MRR < 2*randomMRR {
		t.Fatalf("test MRR %.4f did not beat 2x random %.4f", res.MRR, randomMRR)
	}

	// 4. Calibrate and classify.
	cal, err := eval.FitPlatt(model, ds.Valid, filter, eval.CalibrationOptions{Seed: 3})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	clf, err := eval.TrainClassifier(model, ds.Valid, filter, 3)
	if err != nil {
		t.Fatalf("classifier: %v", err)
	}
	cls := eval.EvaluateClassifier(clf, ds.Test, filter, 4)
	if cls.Accuracy <= 0.5 {
		t.Errorf("classification accuracy %.3f not better than chance", cls.Accuracy)
	}

	// 5. Discover facts and cross-check completeness against the
	//    exhaustive baseline on one relation.
	rel := ds.Train.RelationIDs()[0]
	sampled, err := core.DiscoverFacts(ctx, model, ds.Train, core.NewClusteringTriangles(), core.Options{
		TopN:          20,
		MaxCandidates: 80,
		Relations:     []kg.RelationID{rel},
		Seed:          5,
		Calibrator:    cal.Prob,
	})
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	exhaustive, _, err := core.ExhaustiveDiscover(ctx, model, ds.Train, core.ExhaustiveOptions{
		TopN:      20,
		Relations: []kg.RelationID{rel},
	})
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	inExhaustive := make(map[kg.Triple]struct{}, len(exhaustive.Facts))
	for _, f := range exhaustive.Facts {
		inExhaustive[f.Triple] = struct{}{}
	}
	for _, f := range sampled.Facts {
		if _, ok := inExhaustive[f.Triple]; !ok {
			t.Fatalf("sampled fact %v not found by the exhaustive baseline", f.Triple)
		}
	}

	// 6. Score discoveries against held-out splits with the recovery
	//    protocol machinery (valid+test act as "hidden" truth here).
	ranked := make([]eval.RankedFact, len(sampled.Facts))
	for i, f := range sampled.Facts {
		ranked[i] = eval.RankedFact{Triple: f.Triple, Rank: f.Rank}
	}
	report := eval.EvaluateDiscovery(ranked, kg.Merge(ds.Valid, ds.Test))
	if report.Discovered != len(sampled.Facts) {
		t.Errorf("report covers %d facts, want %d", report.Discovered, len(sampled.Facts))
	}

	// 7. Checkpoint round trip preserves behaviour.
	path := filepath.Join(t.TempDir(), "model.kge")
	if err := kge.SaveFile(model, path); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := kge.LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	probe := ds.Test.Triples()[0]
	if back.Score(probe) != model.Score(probe) {
		t.Error("checkpoint round trip changed scores")
	}
}

// TestEndToEndFleet runs the distributed discovery path with real
// processes: a one-shot kgfleet coordinator and two workers sweep a saved
// dataset/checkpoint, and the spliced TSV must be byte-identical to an
// in-process jobs.Run over the same inputs. Skips when the kgfleet binary
// cannot be built (e.g. no go toolchain in the test environment).
func TestEndToEndFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet pipeline")
	}
	bin := harness.BuildCmdOrSkip(t, "kgfleet")
	ctx := context.Background()

	// Saved artifacts: a tiny dataset and a seeded (untrained — training is
	// irrelevant to splice identity) checkpoint, the on-disk form the fleet
	// consumes.
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	model, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(model, modelPath); err != nil {
		t.Fatal(err)
	}

	// Reference: the identical sweep, single-process.
	strategy, err := core.StrategyByName("graph_degree")
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := kg.LoadDataset(dataDir, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := jobs.Run(ctx, jobs.Spec{
		Model: model, Graph: reloaded.Train, Strategy: strategy,
		Options: core.Options{TopN: 40, MaxCandidates: 30, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := kg.NewGraphWithDicts(reloaded.Train.Entities, reloaded.Train.Relations)
	for _, f := range res.Facts {
		ref.Add(f.Triple)
	}
	var want bytes.Buffer
	if err := kg.WriteTSV(ref, &want); err != nil {
		t.Fatal(err)
	}

	// Fleet: coordinator on a random port plus two workers, as real
	// processes wired together by scraping the coordinator's log.
	logs := t.TempDir()
	outTSV := filepath.Join(t.TempDir(), "facts.tsv")
	coord := harness.StartProc(t, filepath.Join(logs, "coord.log"), bin, "coord",
		"-data", dataDir, "-model", modelPath,
		"-strategy", "graph_degree", "-top_n", "40", "-max_candidates", "30", "-seed", "7",
		"-unit", "1", "-out", outTSV, "-limit", "0", "-drain", "2s")
	addr := coord.MustWaitLine(t, `coordinator listening on (\S+)`, 30*time.Second)

	var workers []*harness.Proc
	for _, name := range []string{"w0", "w1"} {
		workers = append(workers, harness.StartProc(t, filepath.Join(logs, name+".log"), bin, "worker",
			"-coord", "http://"+addr, "-name", name, "-max-idle", "30s"))
	}
	if err := coord.Wait(2 * time.Minute); err != nil {
		t.Fatalf("coordinator: %v\nlog:\n%s", err, coord.Log())
	}
	for i, w := range workers {
		if err := w.Wait(30 * time.Second); err != nil {
			t.Fatalf("worker %d: %v\nlog:\n%s", i, err, w.Log())
		}
	}

	got, err := os.ReadFile(outTSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("fleet TSV differs from in-process reference:\nfleet:\n%s\nreference:\n%s",
			got, want.Bytes())
	}
}
