// Quickstart: generate a small synthetic knowledge graph, train a DistMult
// embedding model on it, and discover new facts with the ENTITY FREQUENCY
// sampling strategy — the complete fact discovery pipeline in one file.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic knowledge graph: 80 entities, 6 relations, 600 facts,
	//    split into train/valid/test.
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		log.Fatalf("generate dataset: %v", err)
	}
	fmt.Printf("dataset: %s\n", ds.Metadata())

	// 2. Train a DistMult model. The trainer handles negative sampling,
	//    batching and the Adam optimizer.
	model, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          32,
		Seed:         1,
	})
	if err != nil {
		log.Fatalf("build model: %v", err)
	}
	start := time.Now()
	if _, err := train.Run(context.Background(), model, ds, train.Config{
		Epochs:     40,
		BatchSize:  64,
		NegSamples: 4,
		Seed:       7,
	}); err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("trained %s in %s\n", model.Name(), time.Since(start).Round(time.Millisecond))

	// 3. Sanity-check the model with standard link prediction.
	res := eval.Evaluate(eval.NewRanker(model, ds.All()), ds.Test, eval.Options{})
	fmt.Printf("link prediction: MRR %.4f, Hits@10 %.3f\n", res.MRR, res.Hits[10])

	// 4. Discover new facts: no queries, no test data — the algorithm
	//    samples candidate triples per relation and keeps those the model
	//    ranks within top_n against their corruptions.
	strategy := core.NewEntityFrequency()
	out, err := core.DiscoverFacts(context.Background(), model, ds.Train, strategy, core.Options{
		TopN:          25,
		MaxCandidates: 100,
		Seed:          42,
	})
	if err != nil {
		log.Fatalf("discover: %v", err)
	}
	fmt.Printf("\ndiscovered %d candidate facts (MRR %.4f, %s total):\n",
		len(out.Facts), out.MRR(), out.Stats.Total.Round(time.Millisecond))
	for i, f := range out.Facts {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(out.Facts)-10)
			break
		}
		fmt.Printf("  rank %3d  %s\n", f.Rank, ds.Train.FormatTriple(f.Triple))
	}
}
