// Link prediction vs fact discovery: the contrast the paper draws in §1.
//
// Link prediction answers *queries* — "(drug:03, targets, ?)" — by ranking
// every entity as the missing slot. Fact discovery needs no query at all.
// This example trains one model and uses it both ways: first the standard
// test-set evaluation and an explicit query, then query-free discovery over
// the same graph.
//
//	go run ./examples/linkprediction
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	ds, err := synth.Generate(synth.Config{
		Name:         "lp-demo",
		NumEntities:  300,
		NumRelations: 8,
		NumTriples:   3000,
		NumTypes:     5,
		EntityZipf:   0.9,
		RelationZipf: 0.8,
		ClosureProb:  0.2,
		NoiseProb:    0.05,
		ValidFrac:    0.05,
		TestFrac:     0.05,
		Seed:         31,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	model, err := kge.New("complex", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          48,
		Seed:         1,
	})
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	filter := ds.All()
	hist, err := train.Run(context.Background(), model, ds, train.Config{
		Epochs:     60,
		BatchSize:  128,
		NegSamples: 6,
		Seed:       2,
		EvalEvery:  10,
		Patience:   3,
		Validate: func(m kge.Model) float64 {
			return eval.Evaluate(eval.NewRanker(m, filter), ds.Valid, eval.Options{MaxTriples: 150}).MRR
		},
	})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("trained complex for %d epochs (best valid MRR %.4f)\n", len(hist.Epochs), hist.Best)

	// --- Mode 1: link prediction over the held-out test set.
	res := eval.Evaluate(eval.NewRanker(model, filter), ds.Test, eval.Options{BothSides: true})
	fmt.Printf("\nlink prediction (filtered, both sides, %d ranks):\n", res.N)
	fmt.Printf("  MRR %.4f   MeanRank %.1f   Hits@1 %.3f   Hits@10 %.3f\n",
		res.MRR, res.MeanRank, res.Hits[1], res.Hits[10])

	// --- Mode 2: an explicit query "(s, r, ?)" — rank all objects.
	q := ds.Test.Triples()[0]
	scores := model.ScoreAllObjects(q.S, q.R, make([]float32, model.NumEntities()))
	type cand struct {
		o     kg.EntityID
		score float32
	}
	var cands []cand
	for o, sc := range scores {
		cands = append(cands, cand{kg.EntityID(o), sc})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	fmt.Printf("\nquery: (%s, %s, ?) — top 5 answers:\n",
		ds.Train.Entities.Name(int32(q.S)), ds.Train.Relations.Name(int32(q.R)))
	for i := 0; i < 5; i++ {
		tag := ""
		if cands[i].o == q.O {
			tag = "  <- held-out answer"
		}
		fmt.Printf("  %d. %-8s score %+.3f%s\n", i+1,
			ds.Train.Entities.Name(int32(cands[i].o)), cands[i].score, tag)
	}

	// --- Mode 3: fact discovery — no query at all.
	disc, err := core.DiscoverFacts(context.Background(), model, ds.Train, core.NewClusteringTriangles(), core.Options{
		TopN:          25,
		MaxCandidates: 150,
		Seed:          5,
	})
	if err != nil {
		log.Fatalf("discover: %v", err)
	}
	fmt.Printf("\nfact discovery (no queries): %d facts, MRR %.4f; first 5:\n", len(disc.Facts), disc.MRR())
	for i, f := range disc.Facts {
		if i == 5 {
			break
		}
		inTest := ""
		if ds.Test.Contains(f.Triple) || ds.Valid.Contains(f.Triple) {
			inTest = "  <- actually a held-out true triple"
		}
		fmt.Printf("  rank %3d  %s%s\n", f.Rank, ds.Train.FormatTriple(f.Triple), inTest)
	}
}
