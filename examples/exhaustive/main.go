// Exhaustive vs sampling — the paper's central scale argument (§1) made
// runnable: exhaustive candidate generation over the complement of the KG
// (the CHAI-style baseline, reference [6]) is complete but explodes with
// |E|²·|R|, while sampling-based discovery inspects a tiny, well-chosen
// slice of the complement.
//
// On a small graph both are feasible, so this example measures: candidates
// scored, wall time, facts found, and what fraction of the exhaustive facts
// the sampler recovered — and then shows how CHAI-style pruning rules
// shrink the exhaustive candidate set.
//
//	go run ./examples/exhaustive
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	ds, err := synth.Generate(synth.Config{
		Name:         "exhaustive-demo",
		NumEntities:  250,
		NumRelations: 6,
		NumTriples:   2500,
		NumTypes:     5,
		EntityZipf:   1.0,
		RelationZipf: 0.8,
		ClosureProb:  0.2,
		NoiseProb:    0.05,
		ValidFrac:    0.05,
		TestFrac:     0.05,
		Seed:         51,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	g := ds.Train
	fmt.Printf("graph: %d entities, %d relations, %d facts\n", g.NumEntities(), g.NumRelations(), g.Len())
	fmt.Printf("complement size |E|^2*|R| - |G| = %d candidate triples\n\n",
		int64(g.NumEntities())*int64(g.NumEntities())*int64(g.NumRelations())-int64(g.Len()))

	model, err := kge.New("transe", kge.Config{
		NumEntities:  g.Entities.Len(),
		NumRelations: g.Relations.Len(),
		Dim:          32,
		Seed:         1,
	})
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	if _, err := train.Run(context.Background(), model, ds, train.Config{
		Epochs: 30, BatchSize: 128, Seed: 2,
	}); err != nil {
		log.Fatalf("train: %v", err)
	}

	const topN = 30
	ctx := context.Background()

	// 1. The naive exhaustive baseline: every complement triple is scored.
	exStart := time.Now()
	exhaustive, exStats, err := core.ExhaustiveDiscover(ctx, model, g, core.ExhaustiveOptions{TopN: topN})
	if err != nil {
		log.Fatalf("exhaustive: %v", err)
	}
	fmt.Printf("exhaustive (no rules):   %8d candidates scored, %6d facts, %8s\n",
		exStats.Generated, len(exhaustive.Facts), time.Since(exStart).Round(time.Millisecond))

	// 2. Exhaustive with CHAI-style pruning rules.
	rStart := time.Now()
	ruled, ruledStats, err := core.ExhaustiveDiscover(ctx, model, g, core.ExhaustiveOptions{
		TopN:  topN,
		Rules: core.DefaultRules(g),
	})
	if err != nil {
		log.Fatalf("exhaustive+rules: %v", err)
	}
	fmt.Printf("exhaustive + rules:      %8d candidates scored, %6d facts, %8s  (%d pruned)\n",
		ruledStats.Generated, len(ruled.Facts), time.Since(rStart).Round(time.Millisecond), ruledStats.Pruned)

	// 3. Sampling-based discovery (the paper's approach).
	sStart := time.Now()
	sampled, err := core.DiscoverFacts(ctx, model, g, core.NewEntityFrequency(), core.Options{
		TopN:          topN,
		MaxCandidates: 500,
		Seed:          7,
	})
	if err != nil {
		log.Fatalf("sampling: %v", err)
	}
	fmt.Printf("sampling (ent. freq.):   %8d candidates scored, %6d facts, %8s\n\n",
		sampled.Stats.Generated, len(sampled.Facts), time.Since(sStart).Round(time.Millisecond))

	// How much of the complete answer did sampling recover, scoring what
	// fraction of the candidates?
	inExhaustive := make(map[kg.Triple]struct{}, len(exhaustive.Facts))
	for _, f := range exhaustive.Facts {
		inExhaustive[f.Triple] = struct{}{}
	}
	recovered := 0
	for _, f := range sampled.Facts {
		if _, ok := inExhaustive[f.Triple]; ok {
			recovered++
		}
	}
	candRatio := float64(sampled.Stats.Generated) / float64(exStats.Generated)
	fmt.Printf("sampling scored %.2f%% of the exhaustive candidates and recovered %d/%d (%.1f%%) of its facts\n",
		100*candRatio, recovered, len(exhaustive.Facts), 100*float64(recovered)/float64(len(exhaustive.Facts)))
	fmt.Println("\nAt YAGO3-10 scale the complement has 5.3x10^11 candidates — the exhaustive")
	fmt.Println("column is infeasible there, which is the paper's case for sampling.")
}
