// Biomedical fact discovery — the paper's motivating scenario (§1): a
// scientist has a drug / disease / protein knowledge graph and wants to
// uncover plausible new relationships without any predefined queries.
//
// This example builds a synthetic biomedical KG with real-world-style
// schema (drugs target proteins, proteins are associated with diseases,
// drugs treat diseases, diseases present symptoms), hides a fraction of the
// "treats" facts, trains ComplEx, and checks how many hidden treatments the
// fact discovery algorithm recovers — an end-to-end measure of discovery
// usefulness that needs no test queries.
//
//	go run ./examples/biomedical
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/train"
)

const (
	numDrugs    = 40
	numProteins = 30
	numDiseases = 25
	numSymptoms = 20
)

// buildBiomedicalKG creates the full ground-truth graph plus the subset of
// "treats" facts we hide from training.
func buildBiomedicalKG(seed int64) (g *kg.Graph, hidden []kg.Triple) {
	rng := rand.New(rand.NewSource(seed))
	g = kg.NewGraph()

	drugs := make([]string, numDrugs)
	for i := range drugs {
		drugs[i] = fmt.Sprintf("drug:%02d", i)
		g.Entities.Intern(drugs[i])
	}
	proteins := make([]string, numProteins)
	for i := range proteins {
		proteins[i] = fmt.Sprintf("protein:%02d", i)
		g.Entities.Intern(proteins[i])
	}
	diseases := make([]string, numDiseases)
	for i := range diseases {
		diseases[i] = fmt.Sprintf("disease:%02d", i)
		g.Entities.Intern(diseases[i])
	}
	symptoms := make([]string, numSymptoms)
	for i := range symptoms {
		symptoms[i] = fmt.Sprintf("symptom:%02d", i)
		g.Entities.Intern(symptoms[i])
	}

	// Latent ground truth: each protein drives a couple of diseases; a drug
	// targeting a protein treats the protein's diseases. This gives the
	// embedding model a learnable compositional pattern.
	proteinDiseases := make([][]int, numProteins)
	for p := range proteinDiseases {
		n := 1 + rng.Intn(2)
		for k := 0; k < n; k++ {
			proteinDiseases[p] = append(proteinDiseases[p], rng.Intn(numDiseases))
		}
	}
	drugTargets := make([][]int, numDrugs)
	for d := range drugTargets {
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			drugTargets[d] = append(drugTargets[d], rng.Intn(numProteins))
		}
	}

	var treats []kg.Triple
	for d, targets := range drugTargets {
		for _, p := range targets {
			g.AddNamed(drugs[d], "targets", proteins[p])
			for _, dis := range proteinDiseases[p] {
				t := kg.Triple{
					S: kg.EntityID(mustID(g, drugs[d])),
					R: kg.RelationID(g.Relations.Intern("treats")),
					O: kg.EntityID(mustID(g, diseases[dis])),
				}
				if g.Add(t) {
					treats = append(treats, t)
				}
			}
		}
	}
	for p, diss := range proteinDiseases {
		for _, dis := range diss {
			g.AddNamed(proteins[p], "associated_with", diseases[dis])
		}
	}
	for dis := range diseases {
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			g.AddNamed(diseases[dis], "presents", symptoms[rng.Intn(numSymptoms)])
		}
	}

	// Hide 30% of the treats facts: these are the discoveries we hope the
	// pipeline recovers.
	rng.Shuffle(len(treats), func(i, j int) { treats[i], treats[j] = treats[j], treats[i] })
	nHide := len(treats) * 30 / 100
	hidden = treats[:nHide]
	train := kg.NewGraphWithDicts(g.Entities, g.Relations)
	hiddenSet := make(map[kg.Triple]struct{}, nHide)
	for _, t := range hidden {
		hiddenSet[t] = struct{}{}
	}
	for _, t := range g.Triples() {
		if _, hide := hiddenSet[t]; !hide {
			train.Add(t)
		}
	}
	return train, hidden
}

func mustID(g *kg.Graph, name string) int32 {
	id, ok := g.Entities.Lookup(name)
	if !ok {
		panic("unknown entity " + name)
	}
	return id
}

func main() {
	log.SetFlags(0)
	graph, hidden := buildBiomedicalKG(11)
	fmt.Printf("biomedical KG: %d entities, %d relations, %d facts (%d treatments hidden)\n",
		graph.NumEntities(), graph.NumRelations(), graph.Len(), len(hidden))

	model, err := kge.New("complex", kge.Config{
		NumEntities:  graph.Entities.Len(),
		NumRelations: graph.Relations.Len(),
		Dim:          48,
		Seed:         3,
	})
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	ds := &kg.Dataset{Name: "biomed", Train: graph,
		Valid: kg.NewGraphWithDicts(graph.Entities, graph.Relations),
		Test:  kg.NewGraphWithDicts(graph.Entities, graph.Relations)}
	if _, err := train.Run(context.Background(), model, ds, train.Config{
		Epochs:     80,
		BatchSize:  128,
		NegSamples: 8,
		Seed:       5,
	}); err != nil {
		log.Fatalf("train: %v", err)
	}

	// Discover facts only for the "treats" relation — the scientist's
	// actual question — using the popularity-aware GRAPH DEGREE strategy.
	treatsID, _ := graph.Relations.Lookup("treats")
	res, err := core.DiscoverFacts(context.Background(), model, graph, core.NewGraphDegree(), core.Options{
		TopN:          30,
		MaxCandidates: 400,
		Relations:     []kg.RelationID{kg.RelationID(treatsID)},
		Seed:          17,
	})
	if err != nil {
		log.Fatalf("discover: %v", err)
	}

	hiddenSet := make(map[kg.Triple]struct{}, len(hidden))
	for _, t := range hidden {
		hiddenSet[t] = struct{}{}
	}
	recovered := 0
	fmt.Printf("\ndiscovered %d candidate treatment facts; checking against hidden ground truth:\n", len(res.Facts))
	for i, f := range res.Facts {
		_, isHidden := hiddenSet[f.Triple]
		if isHidden {
			recovered++
		}
		if i < 15 {
			marker := " "
			if isHidden {
				marker = "✓ (hidden ground truth)"
			}
			fmt.Printf("  rank %3d  %-40s %s\n", f.Rank, graph.FormatTriple(f.Triple), marker)
		}
	}
	fmt.Printf("\nrecovered %d of %d hidden treatments (%.0f%%) without any input queries\n",
		recovered, len(hidden), 100*float64(recovered)/float64(len(hidden)))
}
