// Long-tail discovery — the paper's §6 lesson: every popularity-aware
// strategy "extracts facts from the densely-populated areas of a KG …
// leaving out long-tail entities where the need for discovering new facts
// is higher."
//
// This example makes that observation measurable and then addresses it with
// the extension strategies (INVERSE DEGREE, MIXED EXPLORATION): it hides a
// fraction of facts, runs discovery with each strategy, and reports hidden-
// fact recall split into head (popular) and tail (rare) entity segments,
// using the hidden-fact recovery protocol from internal/eval.
//
//	go run ./examples/longtail
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	full, err := synth.GenerateGraph(synth.Config{
		Name:         "longtail-demo",
		NumEntities:  500,
		NumRelations: 10,
		NumTriples:   6000,
		NumTypes:     6,
		EntityZipf:   1.1, // strong popularity skew: a real head and tail
		RelationZipf: 0.8,
		ClosureProb:  0.2,
		NoiseProb:    0.05,
		Seed:         41,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	// Hide 20% of the facts; they are the recovery target.
	visible, hidden := eval.HideFacts(full, 0.20, 13)
	fmt.Printf("graph: %d facts visible, %d hidden as ground truth\n", visible.Len(), hidden.Len())

	// Split the hidden facts into head and tail by the popularity of their
	// least popular endpoint.
	degrees := make([]int64, full.NumEntities())
	for e := range degrees {
		degrees[e] = visible.Degree(kg.EntityID(e))
	}
	sorted := append([]int64(nil), degrees...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	headCut := sorted[len(sorted)/10] // top decile by degree
	isHead := func(t kg.Triple) bool {
		return degrees[t.S] >= headCut && degrees[t.O] >= headCut
	}
	headHidden := kg.NewGraphWithDicts(full.Entities, full.Relations)
	tailHidden := kg.NewGraphWithDicts(full.Entities, full.Relations)
	for _, t := range hidden.Triples() {
		if isHead(t) {
			headHidden.Add(t)
		} else {
			tailHidden.Add(t)
		}
	}
	fmt.Printf("hidden split: %d head facts, %d tail facts (head = both endpoints in top degree decile)\n\n",
		headHidden.Len(), tailHidden.Len())

	model, err := kge.New("distmult", kge.Config{
		NumEntities:  full.Entities.Len(),
		NumRelations: full.Relations.Len(),
		Dim:          48,
		Seed:         1,
	})
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	ds := &kg.Dataset{Name: "longtail", Train: visible,
		Valid: kg.NewGraphWithDicts(full.Entities, full.Relations),
		Test:  kg.NewGraphWithDicts(full.Entities, full.Relations)}
	if _, err := train.Run(context.Background(), model, ds, train.Config{
		Epochs: 60, BatchSize: 128, NegSamples: 6, Seed: 2,
	}); err != nil {
		log.Fatalf("train: %v", err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tfacts\thead recall\ttail recall\ttotal recall")
	fmt.Fprintln(w, "--------\t-----\t-----------\t-----------\t------------")
	for _, name := range []string{"graph_degree", "cluster_triangles", "uniform_random", "inverse_degree", "mixed_exploration"} {
		strategy, err := core.ExtendedStrategyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.DiscoverFacts(context.Background(), model, visible, strategy, core.Options{
			TopN:          40,
			MaxCandidates: 300,
			Seed:          7,
		})
		if err != nil {
			log.Fatalf("discover %s: %v", name, err)
		}
		ranked := make([]eval.RankedFact, len(res.Facts))
		for i, f := range res.Facts {
			ranked[i] = eval.RankedFact{Triple: f.Triple, Rank: f.Rank}
		}
		head := eval.EvaluateDiscovery(ranked, headHidden)
		tail := eval.EvaluateDiscovery(ranked, tailHidden)
		total := eval.EvaluateDiscovery(ranked, hidden)
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.3f\n",
			name, len(res.Facts), head.Recall, tail.Recall, total.Recall)
	}
	w.Flush()
	fmt.Println("\nPopularity-aware strategies recover mostly head facts. Pure exploration")
	fmt.Println("(inverse_degree) samples the tail but recovers little — tail entities are")
	fmt.Println("undertrained, so the model cannot rank them into top_n. The ε-greedy blend")
	fmt.Println("keeps head recall while nudging tail recall up. This is exactly the open")
	fmt.Println("problem the paper's §6 describes: sampling alone cannot fix what the")
	fmt.Println("embedding never learned.")
}
