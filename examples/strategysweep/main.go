// Strategy sweep: compare all six sampling strategies (including the
// expensive CLUSTERING SQUARES that the paper excluded from its main
// experiments) on one dataset and one model, reporting the paper's three
// metrics — runtime, fact quality (MRR) and efficiency (facts/hour).
//
//	go run ./examples/strategysweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)

	// A mid-sized synthetic dataset: large enough that popularity skew
	// matters, small enough that the squares strategy finishes.
	cfg := synth.Config{
		Name:         "sweep-demo",
		NumEntities:  400,
		NumRelations: 12,
		NumTriples:   4000,
		NumTypes:     6,
		EntityZipf:   1.0,
		RelationZipf: 0.9,
		ClosureProb:  0.25,
		NoiseProb:    0.05,
		ValidFrac:    0.05,
		TestFrac:     0.05,
		Seed:         23,
	}
	ds, err := synth.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("dataset: %s\n", ds.Metadata())

	model, err := kge.New("transe", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          32,
		Seed:         1,
	})
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	start := time.Now()
	if _, err := train.Run(context.Background(), model, ds, train.Config{
		Epochs:     30,
		BatchSize:  128,
		NegSamples: 4,
		Seed:       2,
	}); err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("trained transe in %s\n\n", time.Since(start).Round(time.Millisecond))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tfacts\tMRR\truntime\tfacts/hour")
	fmt.Fprintln(w, "--------\t-----\t---\t-------\t----------")
	for _, name := range core.StrategyNames() {
		strategy, err := core.StrategyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.DiscoverFacts(context.Background(), model, ds.Train, strategy, core.Options{
			TopN:          50,
			MaxCandidates: 200,
			Seed:          9,
		})
		if err != nil {
			log.Fatalf("discover %s: %v", name, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%s\t%.0f\n",
			name, len(res.Facts), res.MRR(),
			res.Stats.Total.Round(time.Millisecond),
			res.Stats.FactsPerHour(len(res.Facts)))
	}
	w.Flush()
	fmt.Println("\nNote how cluster_squares pays a much larger weight-computation cost —")
	fmt.Println("the reason the paper excluded it after a 54-hour run on FB15K-237.")
}
