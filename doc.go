// Package repro reproduces "Evaluation of Sampling Methods for Discovering
// Facts from Knowledge Graph Embeddings" (EDBT 2024) as a pure-Go system:
// knowledge graph storage (internal/kg), synthetic benchmark generation
// (internal/synth), six KGE models with CPU training (internal/kge,
// internal/train), link-prediction evaluation (internal/eval), graph
// analytics (internal/graphstats), the fact discovery algorithm with its
// six sampling strategies (internal/core), and the experiment harness that
// regenerates every table and figure of the paper (internal/harness,
// cmd/repro).
//
// The root package holds the benchmark suite (bench_test.go): one
// testing.B benchmark per paper artifact plus ablation benchmarks for the
// design choices documented in DESIGN.md.
package repro
